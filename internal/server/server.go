// Package server exposes a tkplq.System over a long-running HTTP JSON API:
// the serving layer behind the tkplqd daemon.
//
// Endpoints:
//
//	POST /v1/query   — TkPLQ / density / flow over a time window
//	POST /v1/ingest  — batched uncertain positioning records into the live table
//	GET  /v1/stats   — engine cache + coalescer counters, server counters, table shape
//	GET  /healthz    — liveness
//
// Requests are bounded (per-request timeout, body size cap) and shutdown is
// graceful. Concurrent identical /v1/query requests share one evaluation via
// the engine's query-level request coalescing; the per-response stats carry
// `coalesced` so clients (and the smoke tests) can observe the dedupe.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"tkplq"
)

// Config parametrizes a Server.
type Config struct {
	// System is the query system to serve. Required.
	System *tkplq.System
	// Addr is the listen address; ":8080" when empty. Use "127.0.0.1:0" to
	// bind an ephemeral port (Server.Addr reports the bound address).
	Addr string
	// RequestTimeout bounds each request's handling time; 30s when zero.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request body size; 8 MiB when zero.
	MaxBodyBytes int64
	// Logf receives server log lines; log.Printf when nil.
	Logf func(format string, args ...any)
}

// DefaultRequestTimeout bounds request handling when Config.RequestTimeout
// is zero.
const DefaultRequestTimeout = 30 * time.Second

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 8 << 20

// Server serves one tkplq.System over HTTP.
type Server struct {
	sys     *tkplq.System
	cfg     Config
	handler http.Handler
	httpSrv *http.Server
	ln      net.Listener
	started time.Time

	queries         atomic.Int64
	queryErrors     atomic.Int64
	ingestRequests  atomic.Int64
	recordsIngested atomic.Int64
}

// New builds a Server around the system. It does not listen yet; call Start
// (or use Handler with a test server).
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, errors.New("server: nil System")
	}
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{sys: cfg.System, cfg: cfg, started: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// The timeout handler bounds slow evaluations end-to-end: it replies 503
	// with a JSON body once the budget is spent.
	s.handler = http.TimeoutHandler(mux, cfg.RequestTimeout, `{"error":"request timed out"}`)
	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout backstops the timeout handler (it must outlast it so
		// the 503 body can still be written).
		WriteTimeout: cfg.RequestTimeout + 10*time.Second,
		IdleTimeout:  2 * time.Minute,
	}
	return s, nil
}

// Handler returns the server's root handler (timeouts included), for tests
// and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Start binds the configured address. After Start, Addr reports the bound
// address and Serve accepts connections.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown. It returns nil on graceful
// shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Start(); err != nil {
			return err
		}
	}
	s.cfg.Logf("server: serving on %s", s.Addr())
	err := s.httpSrv.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting connections and waits for in-flight requests to
// drain, up to the context's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cfg.Logf("server: shutting down (%d queries, %d records ingested)",
		s.queries.Load(), s.recordsIngested.Load())
	return s.httpSrv.Shutdown(ctx)
}
