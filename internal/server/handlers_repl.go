package server

import (
	"errors"
	"net/http"
	"time"

	"tkplq/internal/parts"
	"tkplq/internal/repl"
)

// ReplConfig wires per-shard replication into the server: the primary side
// (Source, streaming the store to followers) and, on a member booted as a
// follower, the Follower whose promotion flips the serving mode.
type ReplConfig struct {
	// Source serves POST /v2/replicate; required on any replicated shard
	// (a promoted follower becomes a primary and must be able to feed its
	// rejoining siblings).
	Source *repl.Source
	// Follower is non-nil when this member booted with -replica-of: the
	// server starts in follower mode (read-only, not ready until synced)
	// until POST /v2/promote.
	Follower *repl.Follower
	// Store is the shard's partitioned store, for position reporting.
	Store *parts.Store
	// Self is this member's advertised address (diagnostics).
	Self string
}

// ReadyResponse is the body of GET /readyz — readiness, as opposed to
// /healthz liveness: whether this member should be serving reads right now,
// with a structured cause when not. The router's health loop drives
// load-balancing and failover off it (mode, seal_seq, wal_off).
type ReadyResponse struct {
	Ready bool   `json:"ready"`
	Cause string `json:"cause,omitempty"`
	Role  string `json:"role"`
	// Mode is "primary" or "follower" on a replicated shard, empty
	// elsewhere.
	Mode string `json:"mode,omitempty"`
	// Synced reports a follower's caught-up bit (primaries are always
	// synced with themselves).
	Synced bool `json:"synced"`
	// SealSeq/WALOff is the member's durable position — the failover
	// choice's comparison key.
	SealSeq uint64 `json:"seal_seq"`
	WALOff  int64  `json:"wal_off"`
	Records int    `json:"records"`
}

// PromoteResponse is the body of POST /v2/promote.
type PromoteResponse struct {
	Mode string `json:"mode"`
	// Promoted is false when the member already was a primary (the call is
	// idempotent).
	Promoted bool   `json:"promoted"`
	SealSeq  uint64 `json:"seal_seq"`
	WALOff   int64  `json:"wal_off"`
}

// ReplicationStatsJSON is the `replication` section of GET /v1/stats on a
// replicated shard.
type ReplicationStatsJSON struct {
	Mode string `json:"mode"`
	Self string `json:"self,omitempty"`
	// Followers lists the connected followers' lag (primary mode).
	Followers []ReplFollowerJSON `json:"followers,omitempty"`
	// Upstream describes the replication link (follower mode).
	Upstream *ReplUpstreamJSON `json:"upstream,omitempty"`
}

// ReplFollowerJSON is one connected follower's session state.
type ReplFollowerJSON struct {
	ID                string  `json:"id"`
	AgeSeconds        float64 `json:"age_seconds"`
	SentFrames        int64   `json:"sent_frames"`
	SentBytes         int64   `json:"sent_bytes"`
	AckFrames         int64   `json:"ack_frames"`
	AckBytes          int64   `json:"ack_bytes"`
	LagFrames         int64   `json:"lag_frames"`
	LagBytes          int64   `json:"lag_bytes"`
	SealSeq           uint64  `json:"seal_seq"`
	WALOff            int64   `json:"wal_off"`
	LastAckAgeSeconds float64 `json:"last_ack_age_seconds"`
}

// ReplUpstreamJSON is a follower's view of its replication link.
type ReplUpstreamJSON struct {
	Primary               string  `json:"primary"`
	Connected             bool    `json:"connected"`
	Synced                bool    `json:"synced"`
	SealSeq               uint64  `json:"seal_seq"`
	WALOff                int64   `json:"wal_off"`
	AppliedFrames         int64   `json:"applied_frames"`
	AppliedBytes          int64   `json:"applied_bytes"`
	Reconnects            int64   `json:"reconnects"`
	FullResyncs           int64   `json:"full_resyncs"`
	LastContactAgeSeconds float64 `json:"last_contact_age_seconds"`
}

// isFollower reports whether this member is currently in follower mode
// (read-only; ingest, snapshot and compaction are refused).
func (s *Server) isFollower() bool { return s.following.Load() }

// Following reports the follower mode to callers outside the package — the
// daemon's periodic snapshot ticker must not seal while following (seal
// boundaries come from the primary's stream).
func (s *Server) Following() bool { return s.following.Load() }

// writeFollowerRefusal is the structured 503 for a write endpoint hit on a
// follower: the member is healthy, just not the one that accepts writes.
func (s *Server) writeFollowerRefusal(w http.ResponseWriter, what string) {
	upstream := ""
	if rc := s.cfg.Replication; rc != nil && rc.Follower != nil {
		upstream = rc.Follower.State().Primary
	}
	writeJSONStatus(w, http.StatusServiceUnavailable, struct {
		Error     string `json:"error"`
		Mode      string `json:"mode"`
		Following string `json:"following,omitempty"`
	}{
		Error:     what + " is refused on a follower (read-only replica); talk to the primary or the router",
		Mode:      "follower",
		Following: upstream,
	})
}

// handleReadyz serves GET /readyz. Liveness stays on /healthz ("is the
// process up"); readiness is "should traffic be routed here": a poisoned
// store or a follower that has not caught up answers 503 with a cause.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	out := ReadyResponse{Ready: true, Role: s.cfg.Role, Records: s.sys.Table().Len()}
	if s.cfg.Store != nil {
		if f, ok := s.cfg.Store.(interface{ Failed() error }); ok {
			if err := f.Failed(); err != nil {
				out.Ready = false
				out.Cause = "store poisoned (restart to recover): " + err.Error()
			}
		}
	}
	if rc := s.cfg.Replication; rc != nil {
		if s.isFollower() {
			out.Mode = "follower"
			st := rc.Follower.State()
			out.Synced = st.Synced
			out.SealSeq = st.SealSeq
			out.WALOff = st.WALOff
			if !st.Synced && out.Cause == "" {
				out.Ready = false
				out.Cause = "follower syncing (behind the primary's committed position)"
			}
		} else {
			out.Mode = "primary"
			out.Synced = true
			if rc.Store != nil {
				out.SealSeq, out.WALOff = rc.Store.Log().Position()
			}
		}
	}
	code := http.StatusOK
	if !out.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSONStatus(w, code, out)
}

// lazyWriter defers the 200 status until the stream's first byte, so a
// Serve error raised before anything was written can still pick its own
// status code.
type lazyWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (lw *lazyWriter) Write(p []byte) (int, error) {
	lw.wrote = true
	return lw.w.Write(p)
}

// handleReplicate serves POST /v2/replicate: one follower's long-lived
// replication stream. The response outlives every server timeout — it ends
// when the link drops, the session is superseded, or the follower stops
// acking.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	rc := s.cfg.Replication
	if rc == nil || rc.Source == nil {
		errorJSON(w, http.StatusNotImplemented, "replication not configured on this member")
		return
	}
	if s.isFollower() {
		errorJSON(w, http.StatusServiceUnavailable, "this member is a follower; replicate from the primary")
		return
	}
	var h repl.Handshake
	if err := s.decodeBody(w, r, &h); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad handshake: %v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		errorJSON(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	// The stream is the one response the server's WriteTimeout must never
	// cut: lift the connection deadline, exactly as the SSE handler does.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")

	lw := &lazyWriter{w: w}
	err := rc.Source.Serve(r.Context(), lw, func() { fl.Flush() }, h)
	if err != nil && !lw.wrote {
		if errors.Is(err, repl.ErrBootstrapRequired) {
			errorJSON(w, http.StatusConflict, "%v", err)
			return
		}
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		s.cfg.Logf("server: replication stream ended: %v", err)
	}
}

// handleReplicateAck serves POST /v2/replicate/ack: a follower's
// out-of-band progress report.
func (s *Server) handleReplicateAck(w http.ResponseWriter, r *http.Request) {
	rc := s.cfg.Replication
	if rc == nil || rc.Source == nil {
		errorJSON(w, http.StatusNotImplemented, "replication not configured on this member")
		return
	}
	var a repl.Ack
	if err := s.decodeBody(w, r, &a); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad ack: %v", err)
		return
	}
	rc.Source.Ack(a)
	w.WriteHeader(http.StatusNoContent)
}

// handlePromote serves POST /v2/promote: stop following and accept writes.
// Idempotent — promoting a primary reports its position and changes
// nothing. The router calls this during failover; operators can too.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	rc := s.cfg.Replication
	if rc == nil {
		errorJSON(w, http.StatusNotImplemented, "replication not configured on this member")
		return
	}
	if !s.isFollower() {
		out := PromoteResponse{Mode: "primary"}
		if rc.Store != nil {
			out.SealSeq, out.WALOff = rc.Store.Log().Position()
		}
		writeJSON(w, out)
		return
	}
	seq, off := rc.Follower.Promote()
	s.following.Store(false)
	s.cfg.Logf("server: promoted to primary at (seal %d, wal off %d)", seq, off)
	writeJSON(w, PromoteResponse{Mode: "primary", Promoted: true, SealSeq: seq, WALOff: off})
}

// replicationStats builds the `replication` stats section, or nil when
// replication is not configured.
func (s *Server) replicationStats() *ReplicationStatsJSON {
	rc := s.cfg.Replication
	if rc == nil {
		return nil
	}
	out := &ReplicationStatsJSON{Self: rc.Self}
	if s.isFollower() {
		out.Mode = "follower"
		st := rc.Follower.State()
		up := &ReplUpstreamJSON{
			Primary:       st.Primary,
			Connected:     st.Connected,
			Synced:        st.Synced,
			SealSeq:       st.SealSeq,
			WALOff:        st.WALOff,
			AppliedFrames: st.Frames,
			AppliedBytes:  st.Bytes,
			Reconnects:    st.Reconnects,
			FullResyncs:   st.FullResyncs,
		}
		if !st.LastContact.IsZero() {
			up.LastContactAgeSeconds = time.Since(st.LastContact).Seconds()
		}
		out.Upstream = up
		return out
	}
	out.Mode = "primary"
	if rc.Source != nil {
		for _, f := range rc.Source.Status() {
			out.Followers = append(out.Followers, ReplFollowerJSON{
				ID:                f.ID,
				AgeSeconds:        f.Age.Seconds(),
				SentFrames:        f.SentFrames,
				SentBytes:         f.SentBytes,
				AckFrames:         f.AckFrames,
				AckBytes:          f.AckBytes,
				LagFrames:         f.LagFrames,
				LagBytes:          f.LagBytes,
				SealSeq:           f.SealSeq,
				WALOff:            f.WALOff,
				LastAckAgeSeconds: f.LastAckAge.Seconds(),
			})
		}
	}
	return out
}
