package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"tkplq"
	"tkplq/internal/parts"
	"tkplq/internal/wal"
)

// QueryRequest is the body of POST /v1/query (and the base of the v2 form).
type QueryRequest struct {
	// Kind selects the query: "topk" (default), "density" or "flow"
	// (v2 additionally accepts "presence").
	Kind string `json:"kind"`
	// Algorithm selects the TkPLQ search: "naive", "nl" or "bf" (default).
	// Ignored for density and flow.
	Algorithm string `json:"algorithm"`
	// K is the result count; 10 when omitted. Ignored for flow.
	K int `json:"k"`
	// Ts and Te bound the query window [ts, te] in seconds. Te == 0 selects
	// the end of the table's time span.
	Ts int64 `json:"ts"`
	Te int64 `json:"te"`
	// SLocs is the query set of S-location ids; empty selects every
	// S-location of the space. Flow requires exactly one.
	SLocs []int `json:"slocs"`
}

// ResultJSON is one ranked entry of a query response.
type ResultJSON struct {
	SLoc int     `json:"sloc"`
	Name string  `json:"name"`
	Flow float64 `json:"flow"`
}

// StatsJSON mirrors tkplq.Stats for the wire.
type StatsJSON struct {
	ObjectsTotal       int   `json:"objects_total"`
	ObjectsComputed    int   `json:"objects_computed"`
	PathsEnumerated    int64 `json:"paths_enumerated"`
	BudgetFallbacks    int   `json:"budget_fallbacks"`
	SampleSetsOriginal int64 `json:"sample_sets_original"`
	SampleSetsReduced  int64 `json:"sample_sets_reduced"`
	HeapPops           int   `json:"heap_pops"`
	SequenceBreaks     int64 `json:"sequence_breaks"`
	Workers            int   `json:"workers"`
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	Coalesced          int64 `json:"coalesced"`
	SharedBatch        int   `json:"shared_batch,omitempty"`
}

func statsJSON(st tkplq.Stats) StatsJSON {
	return StatsJSON{
		ObjectsTotal:       st.ObjectsTotal,
		ObjectsComputed:    st.ObjectsComputed,
		PathsEnumerated:    st.PathsEnumerated,
		BudgetFallbacks:    st.BudgetFallbacks,
		SampleSetsOriginal: st.SampleSetsOriginal,
		SampleSetsReduced:  st.SampleSetsReduced,
		HeapPops:           st.HeapPops,
		SequenceBreaks:     st.SequenceBreaks,
		Workers:            st.Workers,
		CacheHits:          st.CacheHits,
		CacheMisses:        st.CacheMisses,
		Coalesced:          st.Coalesced,
		SharedBatch:        st.SharedBatch,
	}
}

// QueryResponse is the body of a successful POST /v1/query (and one element
// of a /v2/query batch response).
type QueryResponse struct {
	Kind      string       `json:"kind"`
	Algorithm string       `json:"algorithm,omitempty"`
	K         int          `json:"k,omitempty"`
	Ts        int64        `json:"ts"`
	Te        int64        `json:"te"`
	Results   []ResultJSON `json:"results"`
	Stats     StatsJSON    `json:"stats"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Records []RecordJSON `json:"records"`
}

// RecordJSON is one uncertain positioning record on the wire.
type RecordJSON struct {
	OID     int64        `json:"oid"`
	T       int64        `json:"t"`
	Samples []SampleJSON `json:"samples"`
}

// SampleJSON is one probabilistic sample: the object is at P-location PLoc
// with probability Prob.
type SampleJSON struct {
	PLoc int     `json:"ploc"`
	Prob float64 `json:"prob"`
}

// IngestResponse is the body of a successful POST /v1/ingest.
type IngestResponse struct {
	Ingested int `json:"ingested"`
	// Records is the table's record count after the batch.
	Records int `json:"records"`
}

// IngestErrorResponse is the structured error envelope of a rejected ingest
// batch: the standard "error" field plus the failing record's position.
type IngestErrorResponse struct {
	Error string `json:"error"`
	Index int    `json:"index"`
	OID   int64  `json:"oid"`
	T     int64  `json:"t"`
}

// SnapshotResponse is the body of a successful POST /v1/snapshot.
type SnapshotResponse struct {
	// SnapshotSeq is the committed snapshot's sequence number.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Records is the number of records the snapshot holds.
	Records int `json:"records"`
	// ElapsedMS is the snapshot write + log rotation time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// WALStatsJSON is the `wal` section of GET /v1/stats, present when the
// daemon runs with a data directory.
type WALStatsJSON struct {
	SnapshotSeq        uint64 `json:"snapshot_seq"`
	Frames             int64  `json:"frames"`
	Records            int64  `json:"records"`
	Bytes              int64  `json:"bytes"`
	Fsyncs             int64  `json:"fsyncs"`
	Snapshots          int64  `json:"snapshots"`
	RecordsSinceSnap   int64  `json:"records_since_snapshot"`
	RecoveredRecords   int64  `json:"recovered_records"`
	ReplayedFrames     int64  `json:"replayed_frames"`
	ReplayedRecords    int64  `json:"replayed_records"`
	TornBytesDropped   int64  `json:"torn_bytes_dropped"`
	CorruptFrames      int64  `json:"corrupt_frames"`
	SnapshotsRequested int64  `json:"snapshots_requested"`
}

// StorageStatsJSON is the `storage` section of GET /v1/stats, present when
// the daemon runs with partitioned storage (tkplqd -storage parts): the
// sealed partition set plus the observables behind the partitioned-store
// guarantees — MaterializedRecords stays 0 across a restart (recovery maps
// partitions without decoding them) and grows only by what window queries
// actually read.
type StorageStatsJSON struct {
	SealSeq             uint64 `json:"seal_seq"`
	Partitions          int    `json:"partitions"`
	SealedRecords       int64  `json:"sealed_records"`
	SealedBytes         int64  `json:"sealed_bytes"`
	Seals               int64  `json:"seals"`
	MigratedRecords     int64  `json:"migrated_records"`
	MaterializedRecords int64  `json:"materialized_records"`
	// Compactions counts committed compactions; CompactedPartitions the
	// input partitions they retired.
	Compactions         int64 `json:"compactions"`
	CompactedPartitions int64 `json:"compacted_partitions"`
	// The window_* fields describe the engine's sealed-window summary cache:
	// whole materialized query windows keyed by sealed-partition identity. A
	// window hit answers a repeated window without touching the partition
	// files at all — materialized_records stays flat.
	WindowEntries int   `json:"window_entries"`
	WindowHits    int64 `json:"window_hits"`
	WindowMisses  int64 `json:"window_misses"`
	WindowBytes   int64 `json:"window_bytes"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Role is the serving mode: "standalone", "shard" or "router".
	Role string `json:"role"`
	// Shard is present in the shard role: this process's place in the
	// topology and its ownership-rejection counter.
	Shard *ShardStatsJSON `json:"shard,omitempty"`
	// Cluster is present in the router role: fan-out counters and every
	// shard's health + embedded stats.
	Cluster *ClusterStatsJSON `json:"cluster,omitempty"`
	Engine  struct {
		CacheEntries       int   `json:"cache_entries"`
		CacheHits          int64 `json:"cache_hits"`
		CacheMisses        int64 `json:"cache_misses"`
		CacheInvalidations int64 `json:"cache_invalidations"`
		Coalesced          int64 `json:"coalesced"`
		Flights            int64 `json:"flights"`
	} `json:"engine"`
	Server struct {
		UptimeSeconds   float64 `json:"uptime_seconds"`
		Queries         int64   `json:"queries"`
		QueryErrors     int64   `json:"query_errors"`
		CanceledQueries int64   `json:"canceled_queries"`
		BatchRequests   int64   `json:"batch_requests"`
		IngestRequests  int64   `json:"ingest_requests"`
		RecordsIngested int64   `json:"records_ingested"`
		Goroutines      int     `json:"goroutines"`
	} `json:"server"`
	Table struct {
		Records int `json:"records"`
		Objects int `json:"objects"`
	} `json:"table"`
	Space struct {
		SLocations int `json:"slocations"`
		Partitions int `json:"partitions"`
	} `json:"space"`
	// Subscriptions reports the /v2/subscribe surface: live and lifetime
	// stream counts, SSE events written, and every live monitor feed.
	Subscriptions struct {
		Active      int64             `json:"active"`
		Total       int64             `json:"total"`
		UpdatesSent int64             `json:"updates_sent"`
		Monitors    []MonitorStatJSON `json:"monitors"`
	} `json:"subscriptions"`
	// WAL is present only when the server fronts a durable store.
	WAL *WALStatsJSON `json:"wal,omitempty"`
	// Storage is present only when the durable store is partitioned.
	Storage *StorageStatsJSON `json:"storage,omitempty"`
	// Replication is present on replicated members: follower lag on a
	// primary, the upstream link on a follower.
	Replication *ReplicationStatsJSON `json:"replication,omitempty"`
}

// MonitorStatJSON describes one live monitor feed in GET /v1/stats.
type MonitorStatJSON struct {
	// QuerySize is the size of the subscribed S-location set.
	QuerySize int    `json:"query_size"`
	K         int    `json:"k"`
	Window    int64  `json:"window"`
	Algorithm string `json:"algorithm"`
	// Subscribers is the number of live subscriptions coalesced onto this
	// monitor.
	Subscribers int `json:"subscribers"`
	// Evals counts incremental evaluations; DirtyObjects the object summaries
	// recomputed across them.
	Evals        int64 `json:"evals"`
	DirtyObjects int64 `json:"dirty_objects"`
	// Updates counts pushed ranking changes; Observed records announced to
	// the monitor.
	Updates  int64 `json:"updates"`
	Observed int   `json:"observed"`
	// Legacy marks poll-style monitors (System.NewMonitor) rather than
	// subscription feeds.
	Legacy bool `json:"legacy,omitempty"`
}

// errorJSON writes a JSON error body with the status code.
func errorJSON(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes the request body into v, bounding its size.
// Unknown fields fail loudly (DisallowUnknownFields) so a typo'd option can
// never silently select a default.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("body exceeds %d bytes", tooLarge.Limit)
		}
		return err
	}
	return nil
}

var algorithms = map[string]tkplq.Algorithm{
	"naive": tkplq.Naive,
	"nl":    tkplq.NestedLoop,
	"bf":    tkplq.BestFirst,
}

var kinds = map[string]tkplq.QueryKind{
	"topk":     tkplq.KindTopK,
	"density":  tkplq.KindDensity,
	"flow":     tkplq.KindFlow,
	"presence": tkplq.KindPresence,
}

// writeQueryError maps an evaluation error to the JSON envelope: 503 for a
// spent request budget, a vanished client or an unreachable shard (the
// degraded-mode envelope naming it), 400 for validation failures. The
// context cases are checked first: a fan-out cut short because this request
// ran out of budget is a timeout, not a shard failure.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	s.queryErrors.Add(1)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
		errorJSON(w, http.StatusServiceUnavailable, "request timed out")
	case errors.Is(err, context.Canceled):
		// The client is gone; the write is best-effort but the counter and
		// log line still record that the evaluation was cut short.
		s.canceled.Add(1)
		errorJSON(w, http.StatusServiceUnavailable, "request canceled")
	default:
		if se, ok := isShardError(err); ok {
			writeShardError(w, se)
			return
		}
		errorJSON(w, http.StatusBadRequest, "%v", err)
	}
}

// handleQuery is the v1 endpoint: a thin adapter that converts the v1
// request shape to a tkplq.Query and evaluates it under the request context.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.queryErrors.Add(1)
		errorJSON(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	// v1 keeps its original kind surface; "presence" (and anything else
	// v2-only) must not leak in through the shared adapter.
	switch req.Kind {
	case "", "topk", "density", "flow":
	default:
		s.queryErrors.Add(1)
		errorJSON(w, http.StatusBadRequest, "unknown query kind %q (want topk, density or flow)", req.Kind)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	out, err := s.evalOne(ctx, QueryV2{QueryRequest: req})
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	s.queries.Add(1)
	writeJSON(w, out)
}

// convertRecords validates the wire records against the space and converts
// them. A bad P-location yields the structured *tkplq.IngestError naming the
// record — the same shape System.Ingest raises — so router-side validation
// rejects a batch before any shard applies a sub-batch of it.
func (s *Server) convertRecords(in []RecordJSON) ([]tkplq.Record, *tkplq.IngestError) {
	recs := make([]tkplq.Record, 0, len(in))
	numPLocs := s.sys.Space().NumPLocations()
	for i, rj := range in {
		samples := make(tkplq.SampleSet, 0, len(rj.Samples))
		for _, sj := range rj.Samples {
			if sj.PLoc < 0 || sj.PLoc >= numPLocs {
				return nil, &tkplq.IngestError{
					Index: i, OID: tkplq.ObjectID(rj.OID), T: tkplq.Time(rj.T),
					Err: fmt.Errorf("unknown P-location %d", sj.PLoc),
				}
			}
			samples = append(samples, tkplq.Sample{Loc: tkplq.PLocID(sj.PLoc), Prob: sj.Prob})
		}
		recs = append(recs, tkplq.Record{
			OID:     tkplq.ObjectID(rj.OID),
			T:       tkplq.Time(rj.T),
			Samples: samples,
		})
	}
	return recs, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		// A follower's table is the primary's replicated WAL and nothing
		// else; a direct write here would diverge it from the primary
		// byte-for-byte and poison every bit-identity guarantee.
		s.writeFollowerRefusal(w, "ingest")
		return
	}
	var req IngestRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad ingest request: %v", err)
		return
	}
	if len(req.Records) == 0 {
		errorJSON(w, http.StatusBadRequest, "empty batch")
		return
	}
	recs, ie := s.convertRecords(req.Records)
	if ie != nil {
		writeJSON400Ingest(w, ie)
		return
	}
	if s.router != nil {
		s.handleIngestRouted(w, r, req.Records)
		return
	}
	if s.cfg.Role == RoleShard {
		// A shard only ever accepts its own partition: a record for a
		// foreign object means the router (or an operator talking to the
		// wrong port) is about to split that object's sequence across
		// shards, which would corrupt every flow it contributes to.
		for i, rec := range recs {
			if owner := s.cfg.Topology.ShardOf(rec.OID); owner != s.cfg.ShardIndex {
				s.ownershipRejects.Add(1)
				writeJSON400Ingest(w, &tkplq.IngestError{
					Index: i, OID: rec.OID, T: rec.T,
					Err: fmt.Errorf("object %d is owned by shard %d, not this shard %d", rec.OID, owner, s.cfg.ShardIndex),
				})
				return
			}
		}
	}
	if err := s.sys.Ingest(recs); err != nil {
		var ie *tkplq.IngestError
		if errors.As(err, &ie) {
			writeJSON400Ingest(w, ie)
			return
		}
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.ingestRequests.Add(1)
	s.recordsIngested.Add(int64(len(recs)))
	s.maybeAutoSnapshot()
	writeJSON(w, IngestResponse{Ingested: len(recs), Records: s.sys.Table().Len()})
}

// storeWALStats extracts the head-log counters from whichever store shape
// is attached: flat stores report them directly, partitioned stores embed
// them in parts.Stats (where SnapshotSeq/Snapshots count seals). Callers
// must have checked s.cfg.Store != nil.
func (s *Server) storeWALStats() wal.Stats {
	switch st := s.cfg.Store.(type) {
	case interface{ Stats() parts.Stats }:
		return st.Stats().WAL
	case interface{ Stats() wal.Stats }:
		return st.Stats()
	}
	return wal.Stats{}
}

// maybeAutoSnapshot compacts the WAL in the background once SnapshotEvery
// records have accumulated since the last snapshot. At most one automatic
// snapshot runs at a time; a failure is logged and retried by the next
// ingest that crosses the threshold.
func (s *Server) maybeAutoSnapshot() {
	if s.cfg.Store == nil || s.cfg.SnapshotEvery <= 0 || s.isFollower() {
		// On a follower, seals happen only where the replication stream says
		// they did on the primary — a local auto-seal would cut partitions
		// at different boundaries and break byte-identity.
		return
	}
	// Lock-free probe: this runs on every ingest and must not serialize
	// behind the store mutex AppendBatch holds across its fsync.
	if s.cfg.Store.RecordsSinceSnapshot() < int64(s.cfg.SnapshotEvery) {
		return
	}
	if !s.snapshotting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.snapshotting.Store(false)
		if err := s.sys.Snapshot(); err != nil {
			s.cfg.Logf("server: auto-snapshot: %v", err)
			return
		}
		s.snapshots.Add(1)
		s.cfg.Logf("server: auto-snapshot committed (seq %d)", s.storeWALStats().SnapshotSeq)
	}()
}

// handleSnapshot serves POST /v1/snapshot: an on-demand WAL compaction.
// Without a durable store the endpoint answers 501.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.router != nil {
		errorJSON(w, http.StatusNotImplemented, "snapshots are per-shard (POST /v1/snapshot on each shard)")
		return
	}
	if s.cfg.Store == nil {
		errorJSON(w, http.StatusNotImplemented, "persistence not configured (start tkplqd with -data-dir)")
		return
	}
	if s.isFollower() {
		s.writeFollowerRefusal(w, "snapshot")
		return
	}
	started := time.Now()
	if err := s.sys.Snapshot(); err != nil {
		errorJSON(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	s.snapshots.Add(1)
	writeJSON(w, SnapshotResponse{
		SnapshotSeq: s.storeWALStats().SnapshotSeq,
		Records:     s.sys.Table().Len(),
		ElapsedMS:   float64(time.Since(started).Microseconds()) / 1000,
	})
}

// CompactResponse is the body of a successful POST /v1/compact. A zero
// Inputs means the size-tiered policy found nothing worth merging — the
// request succeeded and did nothing.
type CompactResponse struct {
	// Inputs is the number of partitions merged (0 = no-op).
	Inputs int `json:"inputs"`
	// Records and Bytes describe the merged output partition.
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// SeqLo and SeqHi are the seal-sequence range the output covers.
	SeqLo uint64 `json:"seq_lo"`
	SeqHi uint64 `json:"seq_hi"`
	// ElapsedMS is the merge + commit + swap time.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleCompact serves POST /v1/compact: one on-demand, policy-driven
// partition compaction. Requires partitioned storage; plain flat persistence
// answers 501.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.router != nil {
		errorJSON(w, http.StatusNotImplemented, "compaction is per-shard (POST /v1/compact on each shard)")
		return
	}
	st, ok := s.cfg.Store.(interface {
		Compact() (parts.CompactResult, error)
	})
	if !ok {
		errorJSON(w, http.StatusNotImplemented, "compaction requires partitioned storage (start tkplqd with -storage parts)")
		return
	}
	if s.isFollower() {
		// Compaction rewrites the partition file set; a follower's must
		// stay a byte-for-byte copy of what the primary shipped.
		s.writeFollowerRefusal(w, "compaction")
		return
	}
	started := time.Now()
	res, err := st.Compact()
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "compact: %v", err)
		return
	}
	writeJSON(w, CompactResponse{
		Inputs:    res.Inputs,
		Records:   res.Records,
		Bytes:     res.Bytes,
		SeqLo:     res.SeqLo,
		SeqHi:     res.SeqHi,
		ElapsedMS: float64(time.Since(started).Microseconds()) / 1000,
	})
}

// writeJSON400Ingest writes the structured rejection envelope for one
// *tkplq.IngestError.
func writeJSON400Ingest(w http.ResponseWriter, ie *tkplq.IngestError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(IngestErrorResponse{
		Error: ie.Error(),
		Index: ie.Index,
		OID:   int64(ie.OID),
		T:     int64(ie.T),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var out StatsResponse
	out.Role = s.cfg.Role
	if s.cfg.Role == RoleShard {
		out.Shard = &ShardStatsJSON{
			Index:               s.cfg.ShardIndex,
			Shards:              s.cfg.Topology.NumShards(),
			OwnershipRejections: s.ownershipRejects.Load(),
		}
	}
	if s.router != nil {
		ctx, cancel := s.requestContext(r)
		defer cancel()
		cluster := s.router.clusterStats(ctx)
		out.Cluster = &cluster
	}
	cs := s.sys.CacheStats()
	out.Engine.CacheEntries = cs.Entries
	out.Engine.CacheHits = cs.Hits
	out.Engine.CacheMisses = cs.Misses
	out.Engine.CacheInvalidations = cs.Invalidations
	out.Engine.Coalesced = cs.Coalesced
	out.Engine.Flights = cs.Flights
	out.Server.UptimeSeconds = time.Since(s.started).Seconds()
	out.Server.Queries = s.queries.Load()
	out.Server.QueryErrors = s.queryErrors.Load()
	out.Server.CanceledQueries = s.canceled.Load()
	out.Server.BatchRequests = s.batches.Load()
	out.Server.IngestRequests = s.ingestRequests.Load()
	out.Server.RecordsIngested = s.recordsIngested.Load()
	out.Server.Goroutines = runtime.NumGoroutine()
	out.Table.Records = s.sys.Table().Len()
	out.Table.Objects = len(s.sys.Table().Objects())
	out.Space.SLocations = s.sys.Space().NumSLocations()
	out.Space.Partitions = s.sys.Space().NumPartitions()
	out.Subscriptions.Active = s.subsActive.Load()
	out.Subscriptions.Total = s.subsTotal.Load()
	out.Subscriptions.UpdatesSent = s.subUpdates.Load()
	out.Subscriptions.Monitors = make([]MonitorStatJSON, 0)
	for _, ms := range s.sys.MonitorStats() {
		out.Subscriptions.Monitors = append(out.Subscriptions.Monitors, MonitorStatJSON{
			QuerySize:    len(ms.Query),
			K:            ms.K,
			Window:       int64(ms.Window),
			Algorithm:    ms.Algorithm.String(),
			Subscribers:  ms.Subscribers,
			Evals:        ms.Evals,
			DirtyObjects: ms.DirtyObjects,
			Updates:      ms.Updates,
			Observed:     ms.Observed,
			Legacy:       ms.Legacy,
		})
	}
	if s.cfg.Store != nil {
		if pst, ok := s.cfg.Store.(interface{ Stats() parts.Stats }); ok {
			ps := pst.Stats()
			out.Storage = &StorageStatsJSON{
				SealSeq:             ps.Seq,
				Partitions:          ps.Partitions,
				SealedRecords:       ps.SealedRecords,
				SealedBytes:         ps.SealedBytes,
				Seals:               ps.Seals,
				MigratedRecords:     ps.MigratedRecords,
				MaterializedRecords: ps.MaterializedRecords,
				Compactions:         ps.Compactions,
				CompactedPartitions: ps.CompactedPartitions,
				WindowEntries:       cs.WindowEntries,
				WindowHits:          cs.WindowHits,
				WindowMisses:        cs.WindowMisses,
				WindowBytes:         cs.WindowBytes,
			}
		}
		ws := s.storeWALStats()
		out.WAL = &WALStatsJSON{
			SnapshotSeq:        ws.SnapshotSeq,
			Frames:             ws.Frames,
			Records:            ws.Records,
			Bytes:              ws.Bytes,
			Fsyncs:             ws.Fsyncs,
			Snapshots:          ws.Snapshots,
			RecordsSinceSnap:   ws.SinceSnapshot,
			RecoveredRecords:   ws.RecoveredRecords,
			ReplayedFrames:     ws.ReplayedFrames,
			ReplayedRecords:    ws.ReplayedRecords,
			TornBytesDropped:   ws.TornBytes,
			CorruptFrames:      ws.CorruptFrames,
			SnapshotsRequested: s.snapshots.Load(),
		}
	}
	out.Replication = s.replicationStats()
	writeJSON(w, out)
}

// handleHealthz is pure liveness — "the process is up and serving HTTP".
// Routing decisions belong to /readyz, which is allowed to say no (poisoned
// store, syncing follower) while the process is perfectly alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":  "ok",
		"role":    s.cfg.Role,
		"records": s.sys.Table().Len(),
	})
}
