package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"tkplq"
)

// QueryV2 is one query of POST /v2/query: the v1 shape plus per-query
// options and the presence kind. The endpoint accepts either a single
// QueryV2 object (answered with one QueryResponse) or a JSON array of them
// (answered with an array, evaluated as one shared-work batch via
// System.DoBatch — queries over the same window perform the per-object data
// reduction once).
type QueryV2 struct {
	QueryRequest
	// OID is the object of a "presence" query.
	OID int64 `json:"oid"`
	// Workers overrides the engine worker pool for this query (0 = engine
	// default). Results are bit-identical at every pool size.
	Workers int `json:"workers"`
	// NoCache bypasses the presence cache for this query.
	NoCache bool `json:"no_cache"`
	// NoCoalesce opts this query out of request coalescing.
	NoCoalesce bool `json:"no_coalesce"`
}

// toQuery converts one wire query to a tkplq.Query, applying the v1-
// compatible defaults (kind topk, algorithm bf, k 10, te = end of data,
// empty slocs = all S-locations). On a router, "end of data" is resolved
// cluster-wide by fanning /v2/span (the router's own table is empty), which
// is why conversion runs under the request context.
func (s *Server) toQuery(ctx context.Context, req QueryV2) (tkplq.Query, QueryV2, error) {
	if req.Kind == "" {
		req.Kind = "topk"
	}
	kind, ok := kinds[req.Kind]
	if !ok {
		return tkplq.Query{}, req, fmt.Errorf("unknown query kind %q (want topk, density, flow or presence)", req.Kind)
	}
	switch kind {
	case tkplq.KindTopK:
		if req.Algorithm == "" {
			req.Algorithm = "bf"
		}
		if req.K == 0 {
			req.K = 10
		}
	case tkplq.KindDensity:
		req.Algorithm = "" // density always runs the shared nested-loop pass
		if req.K == 0 {
			req.K = 10
		}
	default:
		req.Algorithm = ""
		req.K = 0
	}
	var algo tkplq.Algorithm
	if req.Algorithm != "" {
		if algo, ok = algorithms[req.Algorithm]; !ok {
			return tkplq.Query{}, req, fmt.Errorf("unknown algorithm %q (want naive, nl or bf)", req.Algorithm)
		}
	}

	// Validate ids here for every kind so the error names the wire field.
	numSLocs := s.sys.Space().NumSLocations()
	q := make([]tkplq.SLocID, 0, len(req.SLocs))
	for _, id := range req.SLocs {
		if id < 0 || id >= numSLocs {
			return tkplq.Query{}, req, fmt.Errorf("unknown S-location %d (space has %d)", id, numSLocs)
		}
		q = append(q, tkplq.SLocID(id))
	}
	if kind == tkplq.KindFlow || kind == tkplq.KindPresence {
		if len(req.SLocs) != 1 {
			return tkplq.Query{}, req, fmt.Errorf("%s requires exactly one S-location in slocs, got %d", req.Kind, len(req.SLocs))
		}
	} else if len(q) == 0 {
		q = s.sys.AllSLocations()
	}
	ts, te := tkplq.Time(req.Ts), tkplq.Time(req.Te)
	if te == 0 {
		if s.router != nil {
			hi, err := s.router.endOfData(ctx)
			if err != nil {
				return tkplq.Query{}, req, err
			}
			te = hi
		} else if _, hi, ok := s.sys.Table().TimeSpan(); ok {
			te = hi
		}
	}
	if te < ts {
		return tkplq.Query{}, req, fmt.Errorf("empty window: te %d < ts %d", te, ts)
	}
	req.Te = int64(te)
	return tkplq.Query{
		Kind:              kind,
		Algorithm:         algo,
		K:                 req.K,
		Ts:                ts,
		Te:                te,
		SLocs:             q,
		OID:               tkplq.ObjectID(req.OID),
		Workers:           req.Workers,
		DisableCache:      req.NoCache,
		DisableCoalescing: req.NoCoalesce,
	}, req, nil
}

// renderResponse converts one engine response to the wire shape.
func (s *Server) renderResponse(req QueryV2, resp *tkplq.Response, elapsed time.Duration) QueryResponse {
	space := s.sys.Space()
	out := QueryResponse{
		Kind:      req.Kind,
		Algorithm: req.Algorithm,
		K:         req.K,
		Ts:        req.Ts,
		Te:        req.Te,
		Results:   make([]ResultJSON, 0, len(resp.Results)),
		Stats:     statsJSON(resp.Stats),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	for _, re := range resp.Results {
		out.Results = append(out.Results, ResultJSON{
			SLoc: int(re.SLoc),
			Name: space.SLocation(re.SLoc).Name,
			Flow: re.Flow,
		})
	}
	return out
}

// evalOne converts, evaluates and renders a single query under ctx. On a
// router the evaluation is the distributed fan-in instead of the local
// engine; the rendered shape is identical.
func (s *Server) evalOne(ctx context.Context, req QueryV2) (QueryResponse, error) {
	q, req, err := s.toQuery(ctx, req)
	if err != nil {
		return QueryResponse{}, err
	}
	started := time.Now()
	var resp *tkplq.Response
	if s.router != nil {
		resp, err = s.router.Do(ctx, q)
	} else {
		resp, err = s.sys.Do(ctx, q)
	}
	if err != nil {
		return QueryResponse{}, err
	}
	return s.renderResponse(req, resp, time.Since(started)), nil
}

// handleQueryV2 serves POST /v2/query: a single query object or an array of
// queries evaluated as one shared-work batch.
func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.queryErrors.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			errorJSON(w, http.StatusBadRequest, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		errorJSON(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()

	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) == 0 || trimmed[0] != '[' {
		var req QueryV2
		if err := strictUnmarshal(body, &req); err != nil {
			s.queryErrors.Add(1)
			errorJSON(w, http.StatusBadRequest, "bad query request: %v", err)
			return
		}
		out, err := s.evalOne(ctx, req)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		s.queries.Add(1)
		writeJSON(w, out)
		return
	}

	var reqs []QueryV2
	if err := strictUnmarshal(body, &reqs); err != nil {
		s.queryErrors.Add(1)
		errorJSON(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if len(reqs) == 0 {
		s.queryErrors.Add(1)
		errorJSON(w, http.StatusBadRequest, "empty batch")
		return
	}
	queries := make([]tkplq.Query, len(reqs))
	for i := range reqs {
		q, req, err := s.toQuery(ctx, reqs[i])
		if err != nil {
			if _, ok := isShardError(err); ok {
				s.writeQueryError(w, err)
				return
			}
			s.queryErrors.Add(1)
			errorJSON(w, http.StatusBadRequest, "batch query %d: %v", i, err)
			return
		}
		queries[i], reqs[i] = q, req
	}
	started := time.Now()
	var resps []*tkplq.Response
	if s.router != nil {
		resps, err = s.router.DoBatch(ctx, queries)
	} else {
		resps, err = s.sys.DoBatch(ctx, queries)
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	elapsed := time.Since(started)
	out := make([]QueryResponse, len(resps))
	for i, resp := range resps {
		out[i] = s.renderResponse(reqs[i], resp, elapsed)
	}
	s.queries.Add(int64(len(reqs)))
	s.batches.Add(1)
	writeJSON(w, out)
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
