package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// DefaultShardTimeout bounds one router→shard attempt when
// Config.ShardTimeout is zero. Two attempts (one retry) must fit inside the
// router's own request budget, so this is deliberately far below
// DefaultRequestTimeout.
const DefaultShardTimeout = 10 * time.Second

// shardError is a failed router→shard call: which shard, where it lives,
// and why it failed. The router surfaces it as the structured degraded-mode
// 503 envelope naming the shard (writeShardError), so an operator — or the
// cluster smoke test — can see exactly which member is missing.
type shardError struct {
	index int
	addr  string
	cause error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %d (%s) unavailable: %v", e.index, e.addr, e.cause)
}

func (e *shardError) Unwrap() error { return e.cause }

// shardClient is the router's HTTP client for one shard. Every call runs
// under the caller's context capped by the per-attempt timeout; idempotent
// reads (partial, span, stats) get a single retry when budget remains.
// Ingest is never retried: a response lost after the shard applied the
// batch must not be re-sent, or the shard would hold duplicate records.
type shardClient struct {
	index   int
	addr    string // host:port
	base    string // http://host:port
	hc      *http.Client
	timeout time.Duration

	requests    atomic.Int64
	errs        atomic.Int64
	retried     atomic.Int64
	lastLatency atomic.Int64 // microseconds
}

func newShardClient(index int, addr string, timeout time.Duration) *shardClient {
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	return &shardClient{
		index: index,
		addr:  addr,
		base:  "http://" + addr,
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        16,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		timeout: timeout,
	}
}

// err wraps a failure with the shard's identity.
func (c *shardClient) err(cause error) *shardError {
	c.errs.Add(1)
	return &shardError{index: c.index, addr: c.addr, cause: cause}
}

// attempt performs one HTTP round-trip under the per-attempt timeout and
// returns the status code and body. Bodies are fully read so connections
// are reused.
func (c *shardClient) attempt(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	started := time.Now()
	resp, err := c.hc.Do(req)
	c.requests.Add(1)
	c.lastLatency.Store(time.Since(started).Microseconds())
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// call performs the round-trip with up to one retry (idempotent calls
// only). Retry triggers on transport errors and 5xx answers — a shard that
// is down, restarting, or mid-crash — and only while the caller's own
// context is still live, so the retry never blows the request budget.
func (c *shardClient) call(ctx context.Context, method, path string, body []byte, idempotent bool) (int, []byte, error) {
	status, out, err := c.attempt(ctx, method, path, body)
	if !idempotent || ctx.Err() != nil {
		return status, out, err
	}
	if err == nil && status < 500 {
		return status, out, err
	}
	c.retried.Add(1)
	return c.attempt(ctx, method, path, body)
}

// errorEnvelope extracts the "error" field of a JSON error body, falling
// back to the raw body.
func errorEnvelope(status int, body []byte) error {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		return fmt.Errorf("status %d: %s", status, env.Error)
	}
	return fmt.Errorf("status %d: %s", status, bytes.TrimSpace(body))
}

// partial POSTs a pinned-window query to the shard's /v2/partial and
// decodes the per-object contribution.
func (c *shardClient) partial(ctx context.Context, req QueryV2) (*PartialResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, c.err(err)
	}
	status, out, err := c.call(ctx, http.MethodPost, "/v2/partial", body, true)
	if err != nil {
		return nil, c.err(err)
	}
	if status != http.StatusOK {
		return nil, c.err(errorEnvelope(status, out))
	}
	var p PartialResponse
	if err := json.Unmarshal(out, &p); err != nil {
		return nil, c.err(fmt.Errorf("decoding partial: %w", err))
	}
	if len(p.OIDs) != len(p.Rows) {
		return nil, c.err(fmt.Errorf("malformed partial: %d oids, %d rows", len(p.OIDs), len(p.Rows)))
	}
	return &p, nil
}

// span fetches the shard table's time span.
func (c *shardClient) span(ctx context.Context) (*SpanResponse, error) {
	status, out, err := c.call(ctx, http.MethodGet, "/v2/span", nil, true)
	if err != nil {
		return nil, c.err(err)
	}
	if status != http.StatusOK {
		return nil, c.err(errorEnvelope(status, out))
	}
	var sp SpanResponse
	if err := json.Unmarshal(out, &sp); err != nil {
		return nil, c.err(fmt.Errorf("decoding span: %w", err))
	}
	return &sp, nil
}

// ingest forwards a sub-batch to the shard. On a 400 the decoded
// IngestErrorResponse is returned so the router can map the failing index
// back to the caller's batch. Never retried (see shardClient).
func (c *shardClient) ingest(ctx context.Context, recs []RecordJSON) (*IngestResponse, *IngestErrorResponse, error) {
	body, err := json.Marshal(IngestRequest{Records: recs})
	if err != nil {
		return nil, nil, c.err(err)
	}
	status, out, err := c.call(ctx, http.MethodPost, "/v1/ingest", body, false)
	if err != nil {
		return nil, nil, c.err(err)
	}
	switch status {
	case http.StatusOK:
		var resp IngestResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			return nil, nil, c.err(fmt.Errorf("decoding ingest response: %w", err))
		}
		return &resp, nil, nil
	case http.StatusBadRequest:
		var rej IngestErrorResponse
		if err := json.Unmarshal(out, &rej); err != nil || rej.Error == "" {
			return nil, nil, c.err(errorEnvelope(status, out))
		}
		return nil, &rej, nil
	default:
		return nil, nil, c.err(errorEnvelope(status, out))
	}
}

// stats fetches the shard's /v1/stats payload verbatim.
func (c *shardClient) stats(ctx context.Context) (json.RawMessage, error) {
	status, out, err := c.call(ctx, http.MethodGet, "/v1/stats", nil, true)
	if err != nil {
		return nil, c.err(err)
	}
	if status != http.StatusOK {
		return nil, c.err(errorEnvelope(status, out))
	}
	return json.RawMessage(out), nil
}

// isShardError reports whether err (anywhere in its chain) is a failed
// shard call, and returns it.
func isShardError(err error) (*shardError, bool) {
	var se *shardError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}
