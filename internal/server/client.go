package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"tkplq/internal/repl"
)

// DefaultShardTimeout bounds one router→shard attempt when
// Config.ShardTimeout is zero. The retry policy's worst-case schedule must
// fit inside the router's own request budget, so this is deliberately far
// below DefaultRequestTimeout.
const DefaultShardTimeout = 10 * time.Second

// Member modes as learned from /readyz probes.
const (
	memberModeUnknown int32 = iota
	memberModePrimary
	memberModeFollower
)

// shardError is a failed router→shard call: which shard, where it lives,
// and why it failed. The router surfaces it as the structured degraded-mode
// 503 envelope naming the shard (writeShardError), so an operator — or the
// cluster smoke test — can see exactly which member is missing.
type shardError struct {
	index  int
	addr   string
	status int // HTTP status of the refusal; 0 for transport failures
	cause  error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %d (%s) unavailable: %v", e.index, e.addr, e.cause)
}

func (e *shardError) Unwrap() error { return e.cause }

// retryableShardError reports whether err is worth retrying on another
// replica: transport failures and 5xx refusals (member down, restarting,
// mid-crash, or a follower refusing a write-ish call). A 4xx means the
// request itself is bad everywhere.
func retryableShardError(err error) bool {
	se, ok := isShardError(err)
	if !ok {
		return false
	}
	return se.status == 0 || se.status >= 500
}

// shardClient is the router's HTTP client for one replica-set member.
// Every call runs under the caller's context capped by the per-attempt
// timeout; it performs exactly one attempt — retrying across the replica
// set under the shared backoff policy is the router's job (readMember).
// Ingest is never retried by anyone: a response lost after the member
// applied the batch must not be re-sent, or it would hold duplicate
// records.
type shardClient struct {
	shard   int
	member  int
	addr    string // host:port
	base    string // http://host:port
	hc      *http.Client
	timeout time.Duration

	// Health-loop state (written by probe, read by the request paths).
	reachable atomic.Bool
	ready     atomic.Bool
	modeVal   atomic.Int32 // memberMode*
	sealSeq   atomic.Uint64
	walOff    atomic.Int64
	cause     atomic.Pointer[string] // last probe's not-ready cause

	requests    atomic.Int64
	errs        atomic.Int64
	retried     atomic.Int64
	lastLatency atomic.Int64 // microseconds
}

func newShardClient(shard, member int, addr string, timeout time.Duration) *shardClient {
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	return &shardClient{
		shard:  shard,
		member: member,
		addr:   addr,
		base:   "http://" + addr,
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        16,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		timeout: timeout,
	}
}

// err wraps a transport-level failure with the member's identity.
func (c *shardClient) err(cause error) *shardError {
	return c.errAt(0, cause)
}

// errAt wraps a failure carrying the refusing status code (0 = transport).
func (c *shardClient) errAt(status int, cause error) *shardError {
	c.errs.Add(1)
	return &shardError{index: c.shard, addr: c.addr, status: status, cause: cause}
}

func (c *shardClient) modeName() string {
	switch c.modeVal.Load() {
	case memberModePrimary:
		return "primary"
	case memberModeFollower:
		return "follower"
	}
	return ""
}

func (c *shardClient) probeCause() string {
	if p := c.cause.Load(); p != nil {
		return *p
	}
	return ""
}

func (c *shardClient) setCause(s string) {
	c.cause.Store(&s)
}

// aheadOf compares durable positions: whether c has replicated strictly
// more than o. The failover choice maximizes this.
func (c *shardClient) aheadOf(o *shardClient) bool {
	cs, os := c.sealSeq.Load(), o.sealSeq.Load()
	if cs != os {
		return cs > os
	}
	return c.walOff.Load() > o.walOff.Load()
}

// call performs one HTTP round-trip under the per-attempt timeout and
// returns the status code and body. Bodies are fully read so connections
// are reused.
func (c *shardClient) call(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	started := time.Now()
	resp, err := c.hc.Do(req)
	c.requests.Add(1)
	c.lastLatency.Store(time.Since(started).Microseconds())
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// probe refreshes the member's health state from its /readyz. Probes use
// their own short timeout and do not touch the request counters.
func (c *shardClient) probe(ctx context.Context) {
	actx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.reachable.Store(false)
		c.ready.Store(false)
		c.setCause(err.Error())
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var rr ReadyResponse
	if err == nil {
		err = json.Unmarshal(body, &rr)
	}
	if err != nil {
		c.reachable.Store(false)
		c.ready.Store(false)
		c.setCause("bad readyz answer: " + err.Error())
		return
	}
	c.reachable.Store(true)
	c.ready.Store(rr.Ready)
	switch rr.Mode {
	case "follower":
		c.modeVal.Store(memberModeFollower)
	default:
		// An unreplicated member has no mode and serves writes: primary.
		c.modeVal.Store(memberModePrimary)
	}
	c.sealSeq.Store(rr.SealSeq)
	c.walOff.Store(rr.WALOff)
	c.setCause(rr.Cause)
}

// promote asks the member to stop following and accept writes (idempotent
// on the server side). On success the local health view flips immediately
// so the router can route writes without waiting for the next probe.
func (c *shardClient) promote(ctx context.Context) error {
	status, out, err := c.call(ctx, http.MethodPost, repl.PathPromote, nil)
	if err != nil {
		return c.err(err)
	}
	if status != http.StatusOK {
		return c.errAt(status, errorEnvelope(status, out))
	}
	var pr PromoteResponse
	if err := json.Unmarshal(out, &pr); err != nil {
		return c.err(fmt.Errorf("decoding promote response: %w", err))
	}
	c.modeVal.Store(memberModePrimary)
	c.reachable.Store(true)
	c.ready.Store(true)
	c.sealSeq.Store(pr.SealSeq)
	c.walOff.Store(pr.WALOff)
	return nil
}

// errorEnvelope extracts the "error" field of a JSON error body, falling
// back to the raw body.
func errorEnvelope(status int, body []byte) error {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		return fmt.Errorf("status %d: %s", status, env.Error)
	}
	return fmt.Errorf("status %d: %s", status, bytes.TrimSpace(body))
}

// partial POSTs a pinned-window query to the member's /v2/partial and
// decodes the per-object contribution.
func (c *shardClient) partial(ctx context.Context, req QueryV2) (*PartialResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, c.err(err)
	}
	status, out, err := c.call(ctx, http.MethodPost, "/v2/partial", body)
	if err != nil {
		return nil, c.err(err)
	}
	if status != http.StatusOK {
		return nil, c.errAt(status, errorEnvelope(status, out))
	}
	var p PartialResponse
	if err := json.Unmarshal(out, &p); err != nil {
		return nil, c.err(fmt.Errorf("decoding partial: %w", err))
	}
	if len(p.OIDs) != len(p.Rows) {
		return nil, c.err(fmt.Errorf("malformed partial: %d oids, %d rows", len(p.OIDs), len(p.Rows)))
	}
	return &p, nil
}

// span fetches the member table's time span.
func (c *shardClient) span(ctx context.Context) (*SpanResponse, error) {
	status, out, err := c.call(ctx, http.MethodGet, "/v2/span", nil)
	if err != nil {
		return nil, c.err(err)
	}
	if status != http.StatusOK {
		return nil, c.errAt(status, errorEnvelope(status, out))
	}
	var sp SpanResponse
	if err := json.Unmarshal(out, &sp); err != nil {
		return nil, c.err(fmt.Errorf("decoding span: %w", err))
	}
	return &sp, nil
}

// ingest forwards a sub-batch to the shard's primary. On a 400 the decoded
// IngestErrorResponse is returned so the router can map the failing index
// back to the caller's batch. Never retried (see shardClient).
func (c *shardClient) ingest(ctx context.Context, recs []RecordJSON) (*IngestResponse, *IngestErrorResponse, error) {
	body, err := json.Marshal(IngestRequest{Records: recs})
	if err != nil {
		return nil, nil, c.err(err)
	}
	status, out, err := c.call(ctx, http.MethodPost, "/v1/ingest", body)
	if err != nil {
		return nil, nil, c.err(err)
	}
	switch status {
	case http.StatusOK:
		var resp IngestResponse
		if err := json.Unmarshal(out, &resp); err != nil {
			return nil, nil, c.err(fmt.Errorf("decoding ingest response: %w", err))
		}
		return &resp, nil, nil
	case http.StatusBadRequest:
		var rej IngestErrorResponse
		if err := json.Unmarshal(out, &rej); err != nil || rej.Error == "" {
			return nil, nil, c.errAt(status, errorEnvelope(status, out))
		}
		return nil, &rej, nil
	default:
		return nil, nil, c.errAt(status, errorEnvelope(status, out))
	}
}

// stats fetches the member's /v1/stats payload verbatim.
func (c *shardClient) stats(ctx context.Context) (json.RawMessage, error) {
	status, out, err := c.call(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, c.err(err)
	}
	if status != http.StatusOK {
		return nil, c.errAt(status, errorEnvelope(status, out))
	}
	return json.RawMessage(out), nil
}

// isShardError reports whether err (anywhere in its chain) is a failed
// shard call, and returns it.
func isShardError(err error) (*shardError, bool) {
	var se *shardError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}
