package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tkplq"
)

// newSynSystem generates the laptop-scale synthetic dataset once and returns
// a fresh System over it. Workers:1 keeps evaluations slow and deterministic,
// which the coalescing and timeout tests rely on.
var (
	synOnce  sync.Once
	synB     *tkplq.Building
	synTable *tkplq.Table
	synErr   error
)

func newSynSystem(t *testing.T) *tkplq.System {
	t.Helper()
	synOnce.Do(func() {
		synB, synErr = tkplq.GenerateBuilding(tkplq.DefaultBuildingConfig())
		if synErr != nil {
			return
		}
		mcfg := tkplq.DefaultMovementConfig()
		mcfg.Objects = 24
		mcfg.Duration = 1800
		mcfg.MinDwell, mcfg.MaxDwell = 60, 240
		mcfg.MinLifespan, mcfg.MaxLifespan = 900, 1800
		var trajs []tkplq.Trajectory
		trajs, synErr = tkplq.SimulateMovement(synB, mcfg)
		if synErr != nil {
			return
		}
		synTable, synErr = tkplq.GenerateIUPT(synB, trajs, tkplq.DefaultPositioningConfig())
	})
	if synErr != nil {
		t.Fatal(synErr)
	}
	sys, err := tkplq.NewSystem(synB.Space, synTable, tkplq.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// newPaperSystem returns a small hand-built system over the paper's Figure 1
// example, for ingest tests that need full control of the table.
func newPaperSystem(t *testing.T) (*tkplq.System, *struct {
	PLocs [9]tkplq.PLocID
	SLocs [6]tkplq.SLocID
}) {
	t.Helper()
	fig := tkplq.PaperExampleSpace()
	sys, err := tkplq.NewSystem(fig.Space, tkplq.NewTable(), tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := &struct {
		PLocs [9]tkplq.PLocID
		SLocs [6]tkplq.SLocID
	}{PLocs: fig.PLocs, SLocs: fig.SLocs}
	return sys, ids
}

func newTestServer(t *testing.T, sys *tkplq.System, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.System = sys
	cfg.Logf = t.Logf
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestHealthz(t *testing.T) {
	sys, _ := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Status  string `json:"status"`
		Records int    `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q, want ok", body.Status)
	}
}

func TestQueryTopK(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	// Sequential reference through the library.
	q := sys.AllSLocations()
	want, _, err := sys.TopK(q, 5, 0, 1800, tkplq.BestFirst)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{
		Kind: "topk", Algorithm: "bf", K: 5, Ts: 0, Te: 1800,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(want))
	}
	for i, r := range out.Results {
		if r.SLoc != int(want[i].SLoc) || math.Float64bits(r.Flow) != math.Float64bits(want[i].Flow) {
			t.Errorf("result %d = %+v, want {%d %v}", i, r, want[i].SLoc, want[i].Flow)
		}
		if r.Name == "" {
			t.Errorf("result %d has empty name", i)
		}
		if i > 0 && r.Flow > out.Results[i-1].Flow {
			t.Errorf("ranking not descending at %d: %v > %v", i, r.Flow, out.Results[i-1].Flow)
		}
	}
	if out.Stats.ObjectsTotal == 0 {
		t.Error("stats.objects_total = 0, expected objects in the window")
	}
	if out.Te != 1800 {
		t.Errorf("te = %d, want 1800", out.Te)
	}
}

func TestQueryDefaultsAndKinds(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	// Empty body object: kind topk, algorithm bf, k 10, window to table end.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default query status = %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != "topk" || out.Algorithm != "bf" || out.K != 10 {
		t.Errorf("defaults = %s/%s/k=%d, want topk/bf/k=10", out.Kind, out.Algorithm, out.K)
	}
	if out.Te == 0 {
		t.Error("te not defaulted to table span end")
	}

	// Density ranks by flow per m².
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{Kind: "density", K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("density status = %d: %s", resp.StatusCode, body)
	}

	// Flow needs exactly one S-location.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{Kind: "flow", SLocs: []int{0}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].SLoc != 0 {
		t.Errorf("flow results = %+v, want single entry for sloc 0", out.Results)
	}
}

func TestQueryValidation(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	cases := []struct {
		name string
		body any
	}{
		{"bad algorithm", QueryRequest{Algorithm: "quantum"}},
		{"bad kind", QueryRequest{Kind: "heatmap"}},
		{"v2-only presence kind", QueryRequest{Kind: "presence", SLocs: []int{0}}},
		{"inverted window", QueryRequest{Ts: 100, Te: 50}},
		{"flow without slocs", QueryRequest{Kind: "flow"}},
		{"flow with two slocs", QueryRequest{Kind: "flow", SLocs: []int{0, 1}}},
		{"unknown sloc", QueryRequest{SLocs: []int{99999}}},
		{"negative sloc", QueryRequest{SLocs: []int{-1}}},
		{"flow with unknown sloc", QueryRequest{Kind: "flow", SLocs: []int{99999}}},
		{"density with unknown sloc", QueryRequest{Kind: "density", SLocs: []int{99999}}},
		{"negative k", QueryRequest{K: -3}},
		{"unknown field", map[string]any{"kay": 5}},
		{"malformed json", nil}, // replaced below
	}
	for _, tc := range cases {
		var resp *http.Response
		var body []byte
		if tc.name == "malformed json" {
			r, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{nope"))
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			resp = r
		} else {
			resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", tc.body)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.name, resp.StatusCode, body)
		}
	}

	// Wrong method.
	resp, err := ts.Client().Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query status = %d, want 405", resp.StatusCode)
	}
}

func TestIngestAndQuery(t *testing.T) {
	sys, ids := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{})
	p := ids.PLocs

	batch := IngestRequest{Records: []RecordJSON{
		{OID: 1, T: 1, Samples: []SampleJSON{{PLoc: int(p[3]), Prob: 1.0}}},
		{OID: 1, T: 3, Samples: []SampleJSON{{PLoc: int(p[8]), Prob: 1.0}}},
		{OID: 1, T: 4, Samples: []SampleJSON{{PLoc: int(p[7]), Prob: 1.0}}},
		{OID: 2, T: 1, Samples: []SampleJSON{{PLoc: int(p[0]), Prob: 0.5}, {PLoc: int(p[1]), Prob: 0.5}}},
		{OID: 2, T: 3, Samples: []SampleJSON{{PLoc: int(p[1]), Prob: 0.7}, {PLoc: int(p[3]), Prob: 0.3}}},
	}}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 5 || ir.Records != 5 {
		t.Errorf("ingest response = %+v, want 5/5", ir)
	}

	// The ingested records are immediately queryable.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{
		K: 1, Ts: 1, Te: 8, SLocs: []int{int(ids.SLocs[0]), int(ids.SLocs[5])},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest query status = %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].SLoc != int(ids.SLocs[5]) {
		t.Errorf("post-ingest top-1 = %+v, want r6 (%d)", out.Results, ids.SLocs[5])
	}

	// Invalid batches are rejected atomically.
	for name, bad := range map[string]IngestRequest{
		"empty batch":  {},
		"bad prob sum": {Records: []RecordJSON{{OID: 9, T: 2, Samples: []SampleJSON{{PLoc: int(p[0]), Prob: 0.4}}}}},
		"unknown ploc": {Records: []RecordJSON{{OID: 9, T: 2, Samples: []SampleJSON{{PLoc: 999, Prob: 1.0}}}}},
		"negative t":   {Records: []RecordJSON{{OID: 9, T: -2, Samples: []SampleJSON{{PLoc: int(p[0]), Prob: 1.0}}}}},
	} {
		resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", name, resp.StatusCode, body)
		}
	}
	if got := sys.Table().Len(); got != 5 {
		t.Errorf("table has %d records after rejected batches, want 5", got)
	}
}

func TestStatsEndpoint(t *testing.T) {
	sys, ids := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	postJSON(t, ts.Client(), ts.URL+"/v1/ingest", IngestRequest{Records: []RecordJSON{
		{OID: 1, T: 1, Samples: []SampleJSON{{PLoc: int(ids.PLocs[3]), Prob: 1.0}}},
	}})
	postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{K: 2, Ts: 0, Te: 5})

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Server.Queries != 1 || st.Server.IngestRequests != 1 || st.Server.RecordsIngested != 1 {
		t.Errorf("server counters = %+v, want 1 query / 1 ingest / 1 record", st.Server)
	}
	if st.Table.Records != 1 || st.Table.Objects != 1 {
		t.Errorf("table stats = %+v, want 1 record / 1 object", st.Table)
	}
	if st.Space.SLocations != 6 {
		t.Errorf("space slocations = %d, want 6", st.Space.SLocations)
	}
	if st.Engine.Flights == 0 {
		t.Error("engine flights = 0, the query above should have counted")
	}
}

// TestConcurrentQueryCoalescing fires 64 concurrent identical /v1/query
// requests and checks that every response is bit-identical to the sequential
// path and that the engine coalesced concurrent evaluations. The Naive
// algorithm with Workers:1 keeps each evaluation slow (and cache-free), so in
// practice 63 of the 64 join the leader's flight; the deterministic ≥63
// guarantee is asserted in internal/core's hook-based tests.
func TestConcurrentQueryCoalescing(t *testing.T) {
	const callers = 64

	req := QueryRequest{Kind: "topk", Algorithm: "naive", K: 5, Ts: 0, Te: 1800}

	attempt := func() (coalesced int64, err error) {
		sys := newSynSystem(t)
		_, ts := newTestServer(t, sys, Config{})
		client := ts.Client()
		client.Transport.(*http.Transport).MaxIdleConnsPerHost = callers

		want, _, terr := sys.TopK(sys.AllSLocations(), 5, 0, 1800, tkplq.Naive)
		if terr != nil {
			t.Fatal(terr)
		}
		wantJSON := make([]ResultJSON, len(want))
		for i, r := range want {
			wantJSON[i] = ResultJSON{SLoc: int(r.SLoc), Name: sys.Space().SLocation(r.SLoc).Name, Flow: r.Flow}
		}

		var wg sync.WaitGroup
		responses := make([]QueryResponse, callers)
		errs := make([]error, callers)
		start := make(chan struct{})
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				resp, body := postJSON(t, client, ts.URL+"/v1/query", req)
				if resp.StatusCode != http.StatusOK {
					errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				errs[i] = json.Unmarshal(body, &responses[i])
			}(i)
		}
		close(start)
		wg.Wait()

		for i := 0; i < callers; i++ {
			if errs[i] != nil {
				return 0, fmt.Errorf("caller %d: %w", i, errs[i])
			}
			if len(responses[i].Results) != len(wantJSON) {
				return 0, fmt.Errorf("caller %d: %d results, want %d", i, len(responses[i].Results), len(wantJSON))
			}
			for j, r := range responses[i].Results {
				w := wantJSON[j]
				if r.SLoc != w.SLoc || math.Float64bits(r.Flow) != math.Float64bits(w.Flow) {
					return 0, fmt.Errorf("caller %d result %d = %+v, want %+v (not bit-identical to sequential)", i, j, r, w)
				}
			}
			coalesced += responses[i].Stats.Coalesced
		}
		return coalesced, nil
	}

	// Bit-identical results are required on every attempt; the coalescing
	// *count* depends on scheduling, so allow a few rounds to observe a
	// decisive majority.
	for round := 1; ; round++ {
		coalesced, err := attempt()
		if err != nil {
			t.Fatal(err)
		}
		if coalesced >= callers/2 {
			t.Logf("round %d: %d/%d requests coalesced", round, coalesced, callers)
			return
		}
		if round == 5 {
			t.Fatalf("after %d rounds, best coalesced count %d < %d", round, coalesced, callers/2)
		}
		t.Logf("round %d: only %d coalesced, retrying", round, coalesced)
	}
}

func TestRequestTimeout(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{RequestTimeout: time.Millisecond})

	// A Naive full-query evaluation takes well over a millisecond on this
	// dataset; the timeout handler must cut it off with a 503 JSON body.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{
		Kind: "topk", Algorithm: "naive", K: 5, Ts: 0, Te: 1800,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("timeout body %q is not the JSON error payload", body)
	}
}

// TestQueryV2SingleForm: the v2 endpoint answers a single query object with
// the same payload shape as v1, bit-identical to the library path.
func TestQueryV2SingleForm(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	want, _, err := sys.TopK(sys.AllSLocations(), 5, 0, 1800, tkplq.BestFirst)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v2/query", map[string]any{
		"kind": "topk", "algorithm": "bf", "k": 5, "ts": 0, "te": 1800,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 single status = %d: %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(want))
	}
	for i, r := range out.Results {
		if r.SLoc != int(want[i].SLoc) || math.Float64bits(r.Flow) != math.Float64bits(want[i].Flow) {
			t.Errorf("result %d = %+v, want {%d %v}", i, r, want[i].SLoc, want[i].Flow)
		}
	}

	// The presence kind is v2-only.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v2/query", map[string]any{
		"kind": "presence", "slocs": []int{0}, "oid": 1, "ts": 0, "te": 1800,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 presence status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	wantP := sys.Presence(0, 1, 0, 1800)
	if len(out.Results) != 1 || math.Float64bits(out.Results[0].Flow) != math.Float64bits(wantP) {
		t.Errorf("presence = %+v, want single entry %v", out.Results, wantP)
	}
}

// TestQueryV2BatchSharesWork: the array form evaluates same-window queries
// as one shared group — responses are bit-identical to sequential library
// calls and report the group size in stats.shared_batch.
func TestQueryV2BatchSharesWork(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	wantBF, _, err := sys.TopK(sys.AllSLocations(), 3, 0, 1800, tkplq.BestFirst)
	if err != nil {
		t.Fatal(err)
	}
	wantFlow, _ := sys.Flow(0, 0, 1800)

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v2/query", []map[string]any{
		{"kind": "topk", "algorithm": "bf", "k": 3, "ts": 0, "te": 1800},
		{"kind": "topk", "algorithm": "nl", "k": 5, "ts": 0, "te": 1800},
		{"kind": "flow", "slocs": []int{0}, "ts": 0, "te": 1800},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 batch status = %d: %s", resp.StatusCode, body)
	}
	var outs []QueryResponse
	if err := json.Unmarshal(body, &outs); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("batch returned %d responses, want 3", len(outs))
	}
	for i, out := range outs {
		if out.Stats.SharedBatch != 3 {
			t.Errorf("response %d: shared_batch = %d, want 3", i, out.Stats.SharedBatch)
		}
	}
	for i, r := range outs[0].Results {
		if r.SLoc != int(wantBF[i].SLoc) || math.Float64bits(r.Flow) != math.Float64bits(wantBF[i].Flow) {
			t.Errorf("batch topk result %d = %+v, want {%d %v}", i, r, wantBF[i].SLoc, wantBF[i].Flow)
		}
	}
	if math.Float64bits(outs[2].Results[0].Flow) != math.Float64bits(wantFlow) {
		t.Errorf("batch flow = %v, want %v", outs[2].Results[0].Flow, wantFlow)
	}

	// A bad query anywhere fails the whole batch, naming its index.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v2/query", []map[string]any{
		{"kind": "topk", "k": 3},
		{"kind": "flow"}, // flow needs exactly one S-location
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status = %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "batch query 1") {
		t.Errorf("bad batch body %q does not name the offending index", body)
	}
}

// TestErrorEnvelopes: every error path — unknown endpoint, wrong method,
// typo'd field, structured ingest rejection — answers with the JSON
// {"error": ...} envelope, never bare text or HTML.
func TestErrorEnvelopes(t *testing.T) {
	sys, ids := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	assertEnvelope := func(label string, resp *http.Response, body []byte, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Errorf("%s: status = %d, want %d", label, resp.StatusCode, wantCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q, want application/json", label, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q is not a JSON error envelope", label, body)
		}
	}

	get := func(path string) (*http.Response, []byte) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := get("/nope")
	assertEnvelope("404", resp, body, http.StatusNotFound)
	resp, body = get("/v1/query")
	assertEnvelope("405", resp, body, http.StatusMethodNotAllowed)
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("405 Allow = %q, want POST", allow)
	}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/query", map[string]any{"kay": 5})
	assertEnvelope("unknown field", resp, body, http.StatusBadRequest)
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v2/query", map[string]any{"kay": 5})
	assertEnvelope("v2 unknown field", resp, body, http.StatusBadRequest)

	// Structured ingest rejection: the envelope carries the failing record's
	// index and object.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", IngestRequest{Records: []RecordJSON{
		{OID: 7, T: 1, Samples: []SampleJSON{{PLoc: int(ids.PLocs[0]), Prob: 1.0}}},
		{OID: 8, T: -2, Samples: []SampleJSON{{PLoc: int(ids.PLocs[0]), Prob: 1.0}}},
	}})
	assertEnvelope("ingest", resp, body, http.StatusBadRequest)
	var ie IngestErrorResponse
	if err := json.Unmarshal(body, &ie); err != nil {
		t.Fatal(err)
	}
	if ie.Index != 1 || ie.OID != 8 || ie.T != -2 {
		t.Errorf("ingest rejection = %+v, want index 1 / oid 8 / t -2", ie)
	}

	// A duplicate (object, timestamp) pair inside one batch is rejected too.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", IngestRequest{Records: []RecordJSON{
		{OID: 7, T: 5, Samples: []SampleJSON{{PLoc: int(ids.PLocs[0]), Prob: 1.0}}},
		{OID: 7, T: 5, Samples: []SampleJSON{{PLoc: int(ids.PLocs[1]), Prob: 1.0}}},
	}})
	assertEnvelope("duplicate timestamp", resp, body, http.StatusBadRequest)
	if err := json.Unmarshal(body, &ie); err != nil {
		t.Fatal(err)
	}
	if ie.Index != 1 || ie.OID != 7 {
		t.Errorf("duplicate rejection = %+v, want index 1 / oid 7", ie)
	}
	if got := sys.Table().Len(); got != 0 {
		t.Errorf("table has %d records after rejected batches, want 0", got)
	}
}

// TestClientDisconnectCancelsEvaluation: when the client abandons a request
// mid-evaluation, the request context cancels the engine work — observable
// as the server's canceled_queries counter advancing.
func TestClientDisconnectCancelsEvaluation(t *testing.T) {
	sys := newSynSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	reqBody, err := json.Marshal(QueryRequest{Kind: "topk", Algorithm: "naive", K: 5, Ts: 0, Te: 1800})
	if err != nil {
		t.Fatal(err)
	}
	canceledCount := func() int64 {
		resp, err := ts.Client().Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Server.CanceledQueries
	}

	// The evaluation must be in flight when the client walks away, so the
	// cancel delay is a race against the query's runtime; retry with an
	// increasing head start until the counter proves a disconnect canceled
	// an evaluation.
	for attempt := 1; attempt <= 20; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(reqBody))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := ts.Client().Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(time.Duration(attempt) * time.Millisecond)
		cancel()
		<-done
		// The handler observes the cancellation asynchronously; give the
		// counter a moment before the next attempt.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if canceledCount() >= 1 {
				return // the disconnect reached the engine
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Fatalf("canceled_queries still %d after all attempts; disconnects never canceled an evaluation", canceledCount())
}

func TestGracefulShutdown(t *testing.T) {
	sys, _ := newPaperSystem(t)
	srv, err := New(Config{System: sys, Addr: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}
