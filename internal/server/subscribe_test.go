package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"tkplq"
)

// sseEvent is one parsed Server-Sent Events frame.
type sseEvent struct {
	event string
	data  string
}

// readEvent reads the next non-comment SSE frame, failing the test after a
// timeout (the reader runs in a goroutine so a stuck stream cannot hang the
// suite).
func readEvent(t *testing.T, r *bufio.Reader) sseEvent {
	t.Helper()
	ch := make(chan sseEvent, 1)
	errc := make(chan error, 1)
	go func() {
		var ev sseEvent
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			line = strings.TrimRight(line, "\r\n")
			switch {
			case strings.HasPrefix(line, ":"): // heartbeat comment
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if ev.event != "" || ev.data != "" {
					ch <- ev
					return
				}
			}
		}
	}()
	select {
	case ev := <-ch:
		return ev
	case err := <-errc:
		t.Fatalf("reading SSE stream: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for SSE event")
	}
	return sseEvent{}
}

func ingestOne(t *testing.T, sys *tkplq.System, oid int64, ts int64, ploc tkplq.PLocID) {
	t.Helper()
	err := sys.Ingest([]tkplq.Record{{
		OID:     tkplq.ObjectID(oid),
		T:       tkplq.Time(ts),
		Samples: tkplq.SampleSet{{Loc: ploc, Prob: 1.0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeSSE: a /v2/subscribe stream delivers the initial snapshot,
// then an update after an ingest that changes the ranking, with updates
// bit-identical in shape to the query surface.
func TestSubscribeSSE(t *testing.T) {
	sys, ids := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{SSEHeartbeat: 50 * time.Millisecond})

	resp, err := http.Get(ts.URL + "/v2/subscribe?window=600&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	r := bufio.NewReader(resp.Body)

	// Initial snapshot: empty table, all flows zero.
	ev := readEvent(t, r)
	if ev.event != "update" {
		t.Fatalf("first event = %q, want update", ev.event)
	}
	var snap UpdateJSON
	if err := json.Unmarshal([]byte(ev.data), &snap); err != nil {
		t.Fatalf("bad update JSON %q: %v", ev.data, err)
	}
	if len(snap.Results) != 3 {
		t.Fatalf("snapshot has %d results, want 3", len(snap.Results))
	}
	for _, re := range snap.Results {
		if re.Flow != 0 {
			t.Fatalf("snapshot flow for sloc %d = %v, want 0 on empty table", re.SLoc, re.Flow)
		}
	}

	// An object parked in p6 — which feeds exactly one S-location (r6) with
	// its full mass — must surface in the next pushed update.
	ingestOne(t, sys, 1, 10, ids.PLocs[5])
	ev = readEvent(t, r)
	var upd UpdateJSON
	if err := json.Unmarshal([]byte(ev.data), &upd); err != nil {
		t.Fatalf("bad update JSON %q: %v", ev.data, err)
	}
	if upd.Seq == snap.Seq {
		t.Fatalf("update seq %d did not advance past snapshot seq %d", upd.Seq, snap.Seq)
	}
	if upd.Results[0].SLoc != int(ids.SLocs[5]) || upd.Results[0].Flow != 1.0 {
		t.Fatalf("top result = %+v, want sloc %d with flow 1", upd.Results[0], ids.SLocs[5])
	}
	if upd.Records != 1 {
		t.Fatalf("update covers %d records, want 1", upd.Records)
	}

	// The stream's stats must be bit-identical to a one-shot query's view.
	one, err := sys.Do(context.Background(), tkplq.Query{
		Kind: tkplq.KindTopK, Algorithm: tkplq.BestFirst, K: 3,
		Ts: tkplq.Time(upd.Ts), Te: tkplq.Time(upd.Te), SLocs: sys.AllSLocations(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if one.Results[0].Flow != upd.Results[0].Flow {
		t.Fatalf("pushed flow %v != one-shot flow %v", upd.Results[0].Flow, one.Results[0].Flow)
	}
}

// TestSubscribeDisconnect: closing the client connection mid-stream tears
// the subscription down server-side — active count returns to zero and the
// coalesced monitor is released.
func TestSubscribeDisconnect(t *testing.T) {
	sys, ids := newPaperSystem(t)
	srv, ts := newTestServer(t, sys, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v2/subscribe?window=600", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	readEvent(t, r) // snapshot: the stream is live

	if n := srv.subsActive.Load(); n != 1 {
		t.Fatalf("active subscriptions = %d, want 1", n)
	}
	if ms := sys.MonitorStats(); len(ms) != 1 || ms[0].Subscribers != 1 {
		t.Fatalf("monitor stats = %+v, want one monitor with one subscriber", ms)
	}

	// Drop the client mid-stream; ingest keeps flowing and must not block on
	// the dead subscriber.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for srv.subsActive.Load() != 0 || len(sys.MonitorStats()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription not torn down: active=%d monitors=%d",
				srv.subsActive.Load(), len(sys.MonitorStats()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	ingestOne(t, sys, 2, 20, ids.PLocs[0])
}

// TestSubscribeValidation: malformed subscriptions are rejected with the
// JSON error envelope before the stream starts.
func TestSubscribeValidation(t *testing.T) {
	sys, _ := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	for _, tc := range []struct {
		name, url string
	}{
		{"missing window", "/v2/subscribe"},
		{"bad window", "/v2/subscribe?window=-5"},
		{"bad k", "/v2/subscribe?window=60&k=zero"},
		{"bad algorithm", "/v2/subscribe?window=60&algorithm=quantum"},
		{"bad sloc", "/v2/subscribe?window=60&slocs=999"},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || err != nil || body["error"] == "" {
			t.Errorf("%s: status %d body %v, want 400 with error envelope", tc.name, resp.StatusCode, body)
		}
	}

	resp, err := http.Post(ts.URL+"/v2/subscribe?window=60", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

// TestStatsSubscriptionsSection: /v1/stats reports the subscription surface —
// live/lifetime counts, updates written, and the shared monitor — and two
// identical streams coalesce onto one monitor.
func TestStatsSubscriptionsSection(t *testing.T) {
	sys, ids := newPaperSystem(t)
	_, ts := newTestServer(t, sys, Config{})

	open := func() (*http.Response, *bufio.Reader) {
		resp, err := http.Get(ts.URL + "/v2/subscribe?window=600&k=3")
		if err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(resp.Body)
		readEvent(t, r)
		return resp, r
	}
	respA, rA := open()
	defer respA.Body.Close()
	respB, rB := open()
	defer respB.Body.Close()

	ingestOne(t, sys, 1, 10, ids.PLocs[3])
	readEvent(t, rA)
	readEvent(t, rB)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	sub := stats.Subscriptions
	if sub.Active != 2 || sub.Total != 2 {
		t.Errorf("active/total = %d/%d, want 2/2", sub.Active, sub.Total)
	}
	if sub.UpdatesSent < 4 { // 2 snapshots + 2 pushed changes
		t.Errorf("updates_sent = %d, want >= 4", sub.UpdatesSent)
	}
	if len(sub.Monitors) != 1 {
		t.Fatalf("monitors = %+v, want exactly one (coalesced)", sub.Monitors)
	}
	m := sub.Monitors[0]
	if m.Subscribers != 2 || m.K != 3 || m.Window != 600 || m.Algorithm != "best-first" {
		t.Errorf("monitor = %+v, want 2 subscribers, k 3, window 600, best-first", m)
	}
	if m.Evals < 1 || m.Updates < 1 || m.Observed != 1 {
		t.Errorf("monitor counters = %+v, want evals/updates >= 1 and observed 1", m)
	}
}
