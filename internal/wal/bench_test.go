package wal

import (
	"testing"
	"time"

	"tkplq/internal/iupt"
)

// benchAppend measures durable batch appends under one fsync policy. These
// numbers are the basis of docs/OPERATIONS.md's fsync tuning guidance and
// land in CI's BENCH_<sha>.json artifact via cmd/benchjson.
func benchAppend(b *testing.B, policy SyncPolicy) {
	b.ReportAllocs()
	s, _, err := Open(Options{Dir: b.TempDir(), Policy: policy, SyncEvery: 10 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	recs := batchB(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(32*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkWALAppendFsyncAlways(b *testing.B)   { benchAppend(b, SyncAlways) }
func BenchmarkWALAppendFsyncInterval(b *testing.B) { benchAppend(b, SyncInterval) }

// BenchmarkWALRecovery measures Open over a log of 1000 32-record batches —
// the worst-case restart cost at a given snapshot cadence.
func BenchmarkWALRecovery(b *testing.B) {
	b.ReportAllocs()
	dir := b.TempDir()
	s, _, err := Open(Options{Dir: dir, Policy: SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	recs := batchB(32)
	for i := 0; i < 1000; i++ {
		if err := s.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, table, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if table.Len() != 32000 {
			b.Fatalf("recovered %d records", table.Len())
		}
		if err := s2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// batchB builds a representative n-record batch (two samples per record,
// matching the synthetic dataset's average sample-set size).
func batchB(n int) []iupt.Record {
	recs := batch(1, 0, n)
	return recs
}
