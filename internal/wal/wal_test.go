package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tkplq/internal/indoor"
	"tkplq/internal/iupt"
)

// batch builds a valid n-record batch: object oid reporting single-sample
// sets at t0, t0+1, ... over cycling P-locations.
func batch(oid int32, t0 int64, n int) []iupt.Record {
	recs := make([]iupt.Record, n)
	for i := range recs {
		recs[i] = iupt.Record{
			OID: iupt.ObjectID(oid),
			T:   iupt.Time(t0 + int64(i)),
			Samples: iupt.SampleSet{
				{Loc: indoor.PLocID(i % 3), Prob: 0.25},
				{Loc: indoor.PLocID(i%3 + 3), Prob: 0.75},
			},
		}
	}
	return recs
}

// mustOpen opens a store and fails the test on error.
func mustOpen(t *testing.T, opts Options) (*Store, *iupt.Table) {
	t.Helper()
	s, table, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", opts.Dir, err)
	}
	return s, table
}

// assertRecords compares a table's contents to the expected batches, in
// canonical sorted order, field by field.
func assertRecords(t *testing.T, table *iupt.Table, batches ...[]iupt.Record) {
	t.Helper()
	want := iupt.NewTable()
	for _, b := range batches {
		for _, rec := range b {
			want.Append(rec)
		}
	}
	wr, gr := want.SortedRecords(), table.SortedRecords()
	if len(wr) != len(gr) {
		t.Fatalf("recovered %d records, want %d", len(gr), len(wr))
	}
	for i := range wr {
		if wr[i].OID != gr[i].OID || wr[i].T != gr[i].T || len(wr[i].Samples) != len(gr[i].Samples) {
			t.Fatalf("record %d: got (%d,%d,%d samples), want (%d,%d,%d samples)",
				i, gr[i].OID, gr[i].T, len(gr[i].Samples), wr[i].OID, wr[i].T, len(wr[i].Samples))
		}
		for j := range wr[i].Samples {
			if wr[i].Samples[j] != gr[i].Samples[j] {
				t.Fatalf("record %d sample %d: got %+v, want %+v", i, j, gr[i].Samples[j], wr[i].Samples[j])
			}
		}
	}
}

func TestOpenEmptyAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, table := mustOpen(t, Options{Dir: dir})
	if table.Len() != 0 {
		t.Fatalf("fresh dir recovered %d records", table.Len())
	}
	b1, b2 := batch(1, 10, 4), batch(2, 5, 3)
	if err := s.AppendBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(b2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(nil); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Frames != 2 || st.Records != 7 || st.SinceSnapshot != 7 {
		t.Fatalf("stats = %+v, want 2 frames / 7 records", st)
	}
	if st.Fsyncs < 2 {
		t.Fatalf("SyncAlways performed %d fsyncs for 2 appends", st.Fsyncs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(b1); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	s2, table2 := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecords(t, table2, b1, b2)
	st2 := s2.Stats()
	if st2.ReplayedFrames != 2 || st2.RecoveredRecords != 7 || st2.TornBytes != 0 {
		t.Fatalf("recovery stats = %+v", st2)
	}
}

func TestSnapshotRotatesAndTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s, table := mustOpen(t, Options{Dir: dir})
	b1, b2, b3 := batch(1, 0, 5), batch(2, 2, 4), batch(3, 50, 2)
	apply := func(b []iupt.Record) {
		t.Helper()
		if err := s.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
		for _, rec := range b {
			table.Append(rec)
		}
	}
	apply(b1)
	apply(b2)
	if err := s.Snapshot(table.SortedRecords()); err != nil {
		t.Fatal(err)
	}
	apply(b3)
	st := s.Stats()
	if st.SnapshotSeq != 1 || st.Snapshots != 1 || st.SinceSnapshot != 2 {
		t.Fatalf("post-snapshot stats = %+v", st)
	}

	// Exactly one snapshot and one (rotated) segment remain on disk,
	// besides the advisory LOCK file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.Name() == "LOCK" {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("data dir holds %v, want exactly snapshot+segment", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot-00000001.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.log")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, table2 := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecords(t, table2, b1, b2, b3)
	st2 := s2.Stats()
	if st2.SnapshotSeq != 1 || st2.ReplayedFrames != 1 {
		t.Fatalf("recovery stats = %+v, want snapshot seq 1 + 1 replayed frame", st2)
	}
}

// TestTornFinalFrameEveryOffset is the torn-write recovery sweep: the WAL is
// truncated at every byte offset inside the final frame, and replay must
// stop cleanly at the last complete batch every time — then keep accepting
// appends on the truncated log.
func TestTornFinalFrameEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir})
	b1, b2, b3 := batch(1, 0, 3), batch(2, 10, 2), batch(3, 20, 4)
	segPath := filepath.Join(dir, "wal-00000000.log")
	var lastFrameStart int64
	for _, b := range [][]iupt.Record{b1, b2, b3} {
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		lastFrameStart = fi.Size()
		if err := s.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) <= lastFrameStart {
		t.Fatalf("no final frame: %d <= %d", len(full), lastFrameStart)
	}

	for off := lastFrameStart; off < int64(len(full)); off++ {
		tornDir := t.TempDir()
		tornSeg := filepath.Join(tornDir, "wal-00000000.log")
		if err := os.WriteFile(tornSeg, full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, table2, err := Open(Options{Dir: tornDir})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		assertRecords(t, table2, b1, b2)
		st := s2.Stats()
		if want := off - lastFrameStart; st.TornBytes != want {
			t.Fatalf("offset %d: TornBytes = %d, want %d", off, st.TornBytes, want)
		}
		if st.ReplayedFrames != 2 {
			t.Fatalf("offset %d: ReplayedFrames = %d, want 2", off, st.ReplayedFrames)
		}
		// The torn tail was truncated away: the segment must accept new
		// appends and replay them cleanly on the next open.
		if err := s2.AppendBatch(b3); err != nil {
			t.Fatalf("offset %d: append after torn recovery: %v", off, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3, table3, err := Open(Options{Dir: tornDir})
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		assertRecords(t, table3, b1, b2, b3)
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir, Policy: SyncInterval, SyncEvery: 5 * time.Millisecond})
	b := batch(1, 0, 3)
	if err := s.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never fsynced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, table2 := mustOpen(t, Options{Dir: dir, Policy: SyncInterval, SyncEvery: time.Hour})
	defer s2.Close()
	assertRecords(t, table2, b)
}

// TestStaleFileCleanup simulates the crash window between snapshot commit
// and old-file deletion: stale segments and snapshots below the newest
// snapshot's sequence are ignored and removed, and *.tmp leftovers from an
// interrupted snapshot write are discarded.
func TestStaleFileCleanup(t *testing.T) {
	dir := t.TempDir()
	s, table := mustOpen(t, Options{Dir: dir})
	b1, b2 := batch(1, 0, 3), batch(2, 9, 2)
	if err := s.AppendBatch(b1); err != nil {
		t.Fatal(err)
	}
	for _, rec := range b1 {
		table.Append(rec)
	}
	if err := s.Snapshot(table.SortedRecords()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(b2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect a stale pre-snapshot segment holding a batch that must NOT
	// be replayed (it is already inside snapshot 1), plus a temp leftover.
	staleSeg := filepath.Join(dir, "wal-00000000.log")
	f, err := createSegment(staleSeg)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := encodeBatch(batch(99, 1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	frame := frameBytes(payload)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "snapshot-00000002.bin.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, table2 := mustOpen(t, Options{Dir: dir})
	defer s2.Close()
	assertRecords(t, table2, b1, b2)
	if _, err := os.Stat(staleSeg); !os.IsNotExist(err) {
		t.Errorf("stale segment survived recovery: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("tmp leftover survived recovery: %v", err)
	}
}

// TestCorruptCompleteFrameTruncatesAndCounts pins the recovery rule for a
// complete frame that fails its CRC: replay stops there and truncates (a
// machine crash under SyncInterval can lose an unfsynced page out of
// order, so refusing to boot would brick the daemon on a documented crash
// case), but the drop is observable — CorruptFrames counts it, unlike an
// ordinary torn tail.
func TestCorruptCompleteFrameTruncatesAndCounts(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir})
	segPath := filepath.Join(dir, "wal-00000000.log")
	if err := s.AppendBatch(batch(1, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendBatch(batch(2, 10, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the FIRST frame: the frame is complete (the
	// tear interpretation is impossible), so its CRC mismatch is corruption.
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[segHdrLen+frameHdrLen] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, table2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after mid-frame corruption: %v", err)
	}
	defer s2.Close()
	if table2.Len() != 0 {
		t.Fatalf("recovered %d records past a corrupt frame", table2.Len())
	}
	st := s2.Stats()
	if st.CorruptFrames != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", st.CorruptFrames)
	}
	if st.TornBytes == 0 {
		t.Fatalf("corrupt frame not counted as dropped bytes: %+v", st)
	}
}

// TestDoubleOpenLocked: a second store on the same directory must fail
// while the first holds it, and succeed after Close releases the flock.
func TestDoubleOpenLocked(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, Options{Dir: dir})
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("second Open on a live data dir succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := mustOpen(t, Options{Dir: dir})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSeedsFromGendataFormat(t *testing.T) {
	// A gendata -format bin file dropped in as snapshot-00000001.bin seeds
	// the data dir: the formats are identical by construction.
	dir := t.TempDir()
	table := iupt.NewTable()
	for _, rec := range batch(7, 0, 6) {
		table.Append(rec)
	}
	f, err := os.Create(filepath.Join(dir, "snapshot-00000001.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := table.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, recovered := mustOpen(t, Options{Dir: dir})
	defer s.Close()
	assertRecords(t, recovered, batch(7, 0, 6))
	if st := s.Stats(); st.SnapshotSeq != 1 {
		t.Fatalf("seeded snapshot seq = %d, want 1", st.SnapshotSeq)
	}
}

// TestShortFinalSegmentRecreated simulates a crash during segment creation
// itself: a data dir whose active segment is shorter than its own header
// (even zero bytes) must recover — the file holds no frames — instead of
// wedging every subsequent boot.
func TestShortFinalSegmentRecreated(t *testing.T) {
	for _, size := range []int{0, 3, segHdrLen - 1} {
		dir := t.TempDir()
		s, table := mustOpen(t, Options{Dir: dir})
		b := batch(1, 0, 4)
		if err := s.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
		for _, rec := range b {
			table.Append(rec)
		}
		if err := s.Snapshot(table.SortedRecords()); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		seg := filepath.Join(dir, "wal-00000001.log")
		if err := os.Truncate(seg, int64(size)); err != nil {
			t.Fatal(err)
		}
		s2, table2 := mustOpen(t, Options{Dir: dir})
		assertRecords(t, table2, b)
		if st := s2.Stats(); st.TornBytes != int64(size) {
			t.Fatalf("size %d: TornBytes = %d", size, st.TornBytes)
		}
		// The recreated segment must accept appends again.
		b2 := batch(2, 100, 2)
		if err := s2.AppendBatch(b2); err != nil {
			t.Fatal(err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		s3, table3 := mustOpen(t, Options{Dir: dir})
		assertRecords(t, table3, b, b2)
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot-00000003.bin"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted empty Dir")
	}
}

// frameBytes wraps a payload in the length+CRC frame header.
func frameBytes(payload []byte) []byte {
	frame := make([]byte, 0, frameHdrLen+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	return append(frame, payload...)
}
