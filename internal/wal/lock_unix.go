//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the advisory lock guarding a data directory. It is never
// deleted; the flock itself (not the file's existence) carries the lock, so
// a crashed process releases it automatically.
const lockFileName = "LOCK"

// lockDir takes an exclusive, non-blocking flock on the directory's lock
// file. A second store opening the same directory fails loudly instead of
// interleaving frames with the first.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the lock (also released implicitly on process exit).
func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
