// Package wal implements the durability layer behind the live IUPT: an
// append-only, CRC-framed, fsync-batched write-ahead log paired with
// periodic binary snapshots of the table.
//
// A Store owns one data directory containing at most one snapshot and one
// active log segment, both named by a monotonically increasing snapshot
// sequence number:
//
//	data/
//	  snapshot-00000003.bin   // binary IUPT snapshot (cmd/gendata format)
//	  wal-00000003.log        // batches accepted after snapshot 3
//
// Every accepted ingest batch is appended atomically as one CRC32C-framed
// record before it is applied to the in-memory table (write-ahead order).
// Snapshot writes the whole table to a temp file, fsyncs, renames it into
// place, rotates the log to a fresh segment and deletes the now-redundant
// older files — so the log is truncated at every snapshot and recovery cost
// is bounded by the snapshot cadence.
//
// Open recovers the directory deterministically: it loads the newest
// snapshot, replays the surviving segment frame by frame, and tolerates a
// torn final frame (a crash mid-append) by truncating the segment back to
// the last complete batch. Because the snapshot stores records in the
// table's canonical time-sorted order and replay re-applies batches in
// append order, a recovered table answers queries bit-identically to the
// table that never restarted.
//
// The on-disk byte layouts are specified in docs/FORMATS.md.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tkplq/internal/indoor"
	"tkplq/internal/iupt"
)

// SyncPolicy selects when appended frames are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the segment after every appended batch: an
	// acknowledged ingest survives an immediate machine crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval batches fsyncs on a background timer (Options.SyncEvery):
	// much higher ingest throughput, at the cost of losing at most the last
	// interval's batches on a machine crash. A process crash (kill -9) loses
	// nothing either way — the OS still holds the written pages.
	SyncInterval
)

// DefaultSyncEvery is the fsync cadence when Options.SyncEvery is zero and
// the policy is SyncInterval.
const DefaultSyncEvery = 100 * time.Millisecond

// Options parametrizes Open.
type Options struct {
	// Dir is the data directory; created if missing. Required.
	Dir string
	// Policy selects the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SyncEvery is the background fsync cadence for SyncInterval
	// (DefaultSyncEvery when zero).
	SyncEvery time.Duration
	// Base, when non-nil, replaces snapshot recovery with an external base
	// artifact (internal/parts passes its sealed-partition set). The hook
	// runs during Open, after the directory lock is acquired, and returns
	// the base table plus the sequence number of the newest base artifact:
	// log segments with an older sequence are subsumed by the base and
	// dropped; the rest replay into the returned table. Snapshot files are
	// the hook's responsibility (parts migrates them into partitions);
	// Open neither reads nor writes them in this mode, and Snapshot must
	// not be called on the store — rotate with RotateAfterCommit instead.
	Base func(dir string) (*iupt.Table, uint64, error)
	// KeepSegments retains that many rotated-out segments on disk instead
	// of deleting them at rotation (0 = delete immediately, the historical
	// behavior). Retained segments are subsumed by committed artifacts and
	// are never replayed on Open; they exist so a replication source can
	// stream recent history to a briefly-disconnected follower without a
	// full re-bootstrap.
	KeepSegments int
}

// Stats is a snapshot of a Store's lifetime counters. Recovered* and
// Replayed*/Torn* describe the Open that created the store; the rest count
// work performed since.
type Stats struct {
	// SnapshotSeq is the sequence number of the newest committed snapshot
	// (0 = none yet).
	SnapshotSeq uint64
	// Frames, Records and Bytes count appended batches, their records and
	// their on-disk frame bytes.
	Frames  int64
	Records int64
	Bytes   int64
	// Fsyncs counts segment fsyncs (per append under SyncAlways, per timer
	// tick with pending writes under SyncInterval, plus one on Close).
	Fsyncs int64
	// Snapshots counts snapshots committed by this store.
	Snapshots int64
	// SinceSnapshot counts records appended since the last snapshot (or
	// Open), the signal behind automatic snapshot cadence.
	SinceSnapshot int64
	// RecoveredRecords is the table size produced by Open (snapshot or base
	// records plus replayed WAL records).
	RecoveredRecords int64
	// ReplayedFrames counts complete WAL frames applied during Open.
	ReplayedFrames int64
	// ReplayedRecords counts records applied from WAL frames during Open —
	// the work recovery actually performed beyond loading the snapshot or
	// mapping the base. For a partitioned store this is the whole recovery
	// cost: restart does work proportional to the WAL tail, not the table.
	ReplayedRecords int64
	// TornBytes counts trailing bytes dropped (and truncated away) during
	// Open: an incomplete final frame, or everything from the first
	// invalid frame on.
	TornBytes int64
	// CorruptFrames counts complete frames that failed their CRC during
	// Open. Replay stops and truncates there like a torn write (a machine
	// crash under SyncInterval can lose an unfsynced page out of order),
	// but a nonzero count on a log whose frames were all fsynced means bit
	// rot — alert on it.
	CorruptFrames int64
}

const (
	segMagic   = "TKWL"
	segVersion = uint16(1)
	segHdrLen  = 6 // magic + version

	frameHdrLen = 8       // payload length (uint32) + CRC32C (uint32)
	maxFrameLen = 1 << 26 // 64 MiB sanity bound on one batch
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errShortSegment marks a segment file shorter than its own header — the
// signature of a crash during segment creation, tolerated (dropped and
// recreated) when it is the final segment.
var errShortSegment = errors.New("segment shorter than its header")

var (
	snapshotRE = regexp.MustCompile(`^snapshot-(\d{8})\.bin$`)
	segmentRE  = regexp.MustCompile(`^wal-(\d{8})\.log$`)
	// partitionRE recognizes internal/parts' sealed partitions — both
	// single-seal part-N.tkp and compacted part-N-M.tkp range files — so a
	// flat open can refuse a partitioned directory instead of silently
	// serving the WAL tail without the sealed records.
	partitionRE = regexp.MustCompile(`^part-(\d{8})(?:-(\d{8}))?\.tkp$`)
)

func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%08d.bin", seq) }
func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }

// Store is a durable write-ahead log + snapshot store over one data
// directory. It is safe for concurrent use, but callers that pair it with a
// live table (tkplq.System does) must serialize AppendBatch with the table
// apply and Snapshot with both — otherwise the log order can diverge from
// the table order and recovery would replay a different history.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	seg    *os.File
	lock   *os.File // flock'd lock file guarding the directory
	seq    uint64   // current snapshot/segment sequence
	segOff int64    // committed byte length of the active segment
	dirty  bool     // segment has writes not yet fsynced
	closed bool
	failed error // poisoned: rotation failed past the snapshot commit point
	stats  Stats

	// watchers are poked (non-blocking) after every appended frame and
	// every rotation so a replication source tailing the segment files can
	// sleep until there is new committed log to read.
	watchers  map[uint64]chan struct{}
	nextWatch uint64

	// sinceSnap mirrors stats.SinceSnapshot as an atomic so hot paths (the
	// server probes it per ingest) can read it without taking mu.
	sinceSnap atomic.Int64

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// Open opens (or initializes) the data directory and recovers its contents
// into a fresh table: newest snapshot first, then the surviving log segment
// frame by frame. A torn final frame — the signature of a crash mid-append —
// is dropped and truncated away (Stats.TornBytes); a corrupt frame anywhere
// else is an error. Stale files from interrupted snapshots (older segments,
// older snapshots, *.tmp leftovers) are removed.
func Open(opts Options) (*Store, *iupt.Table, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// One store per directory: a second process opening the same data dir
	// would interleave frames and clobber the other's snapshots. The flock
	// is released automatically when the process dies, so a kill -9 never
	// wedges the directory.
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	ok := false
	defer func() {
		if !ok {
			unlockDir(lock)
		}
	}()

	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	snapshots := map[uint64]string{}
	segments := map[uint64]string{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			// Leftover of an interrupted snapshot write; never committed.
			_ = os.Remove(filepath.Join(opts.Dir, name))
		case snapshotRE.MatchString(name):
			seq := parseSeq(snapshotRE.FindStringSubmatch(name)[1])
			snapshots[seq] = filepath.Join(opts.Dir, name)
		case segmentRE.MatchString(name):
			seq := parseSeq(segmentRE.FindStringSubmatch(name)[1])
			segments[seq] = filepath.Join(opts.Dir, name)
		case partitionRE.MatchString(name) && opts.Base == nil:
			// The directory was migrated to the partitioned layout; a flat
			// open would ignore the sealed records — refuse loudly.
			return nil, nil, fmt.Errorf("wal: %s holds sealed partition %s: the directory uses the partitioned layout (reopen with -storage parts)", opts.Dir, name)
		}
	}

	s := &Store{dir: opts.Dir, opts: opts, lock: lock}

	// Recover the base state: the newest snapshot, or — in external-base
	// mode — whatever the Base hook reconstructs (sealed partitions). Either
	// way snapSeq is the cut every surviving log frame must postdate.
	table := iupt.NewTable()
	var snapSeq uint64
	if opts.Base != nil {
		table, snapSeq, err = opts.Base(opts.Dir)
		if err != nil {
			return nil, nil, err
		}
	} else if len(snapshots) > 0 {
		// Anything older than the newest snapshot is redundant by
		// construction (snapshot N contains everything up to its cut).
		snapSeq = maxSeq(snapshots)
		table, err = readSnapshot(snapshots[snapSeq])
		if err != nil {
			return nil, nil, fmt.Errorf("wal: snapshot %s: %w", snapshots[snapSeq], err)
		}
		for seq, path := range snapshots {
			if seq < snapSeq {
				_ = os.Remove(path)
			}
		}
	}
	// Segments older than the snapshot are fully contained in it: a crash
	// between snapshot commit and cleanup leaves them behind. Drop the ones
	// outside the replication retention window; retained ones stay on disk
	// for catch-up streaming but are never replayed.
	for seq, path := range segments {
		if seq < snapSeq && snapSeq-seq > uint64(opts.KeepSegments) {
			_ = os.Remove(path)
			delete(segments, seq)
		}
	}

	// Replay surviving segments from the base cut on, in sequence order.
	// Normally exactly one (seq == snapSeq) exists; tolerate a torn tail
	// only in the last.
	var segSeqs []uint64
	for seq := range segments {
		if seq >= snapSeq {
			segSeqs = append(segSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	s.seq = snapSeq
	for i, seq := range segSeqs {
		last := i == len(segSeqs)-1
		frames, records, validOff, torn, corrupt, err := replaySegment(segments[seq], table, last)
		s.stats.CorruptFrames += corrupt
		if errors.Is(err, errShortSegment) && last {
			// A crash tore the segment's own creation: it holds no frames.
			// Drop it; the active-segment path below recreates it cleanly.
			s.stats.TornBytes += torn
			_ = os.Remove(segments[seq])
			delete(segments, seq)
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("wal: segment %s: %w", segments[seq], err)
		}
		s.stats.ReplayedFrames += frames
		s.stats.ReplayedRecords += records
		if torn > 0 {
			s.stats.TornBytes += torn
			if err := os.Truncate(segments[seq], validOff); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn segment %s: %w", segments[seq], err)
			}
		}
		if seq > s.seq {
			s.seq = seq
		}
	}
	s.stats.RecoveredRecords = int64(table.Len())
	s.stats.SnapshotSeq = snapSeq

	// Open (or create) the active segment for appending.
	segPath := filepath.Join(opts.Dir, segmentName(s.seq))
	if _, ok := segments[s.seq]; ok {
		s.seg, err = os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		fi, err := s.seg.Stat()
		if err != nil {
			s.seg.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		s.segOff = fi.Size()
	} else {
		if s.seg, err = createSegment(segPath); err != nil {
			return nil, nil, err
		}
		if err := syncDir(opts.Dir); err != nil {
			return nil, nil, err
		}
		s.segOff = segHdrLen
	}

	if opts.Policy == SyncInterval {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.syncLoop()
	}
	ok = true
	return s, table, nil
}

// parseSeq converts a zero-padded decimal capture; the regexp guarantees it
// parses.
func parseSeq(s string) uint64 {
	n, _ := strconv.ParseUint(s, 10, 64)
	return n
}

func maxSeq(m map[uint64]string) uint64 {
	var max uint64
	for seq := range m {
		if seq > max {
			max = seq
		}
	}
	return max
}

// readSnapshot loads one binary IUPT snapshot.
func readSnapshot(path string) (*iupt.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return iupt.ReadBinary(f)
}

// createSegment creates an empty log segment with its header, fsynced.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, segHdrLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return f, nil
}

// SyncDir fsyncs a directory so renames and creates within it are durable —
// the commit step of every tmp+fsync+rename in this package, exported for
// internal/parts' partition commits.
func SyncDir(dir string) error { return syncDir(dir) }

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return nil
}

// AppendBatch durably appends one ingest batch as a single atomic frame.
// Under SyncAlways the frame is fsynced before AppendBatch returns; under
// SyncInterval it is fsynced by the background timer. An empty batch is a
// no-op; a batch whose encoded payload exceeds the 64 MiB frame bound is
// rejected up front (replay enforces the same bound, so an oversized frame
// could never be recovered — split huge bulk loads into smaller batches).
// AppendBatch satisfies tkplq.Persister.
func (s *Store) AppendBatch(recs []iupt.Record) error {
	if len(recs) == 0 {
		return nil
	}
	payload, err := encodeBatch(recs)
	if err != nil {
		return err
	}
	if len(payload) > maxFrameLen {
		return fmt.Errorf("wal: batch encodes to %d bytes, exceeding the %d-byte frame bound — split the batch", len(payload), maxFrameLen)
	}
	frame := make([]byte, 0, frameHdrLen+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	if _, err := s.seg.Write(frame); err != nil {
		// The frame may be partially on disk; appending more after it would
		// bury acknowledged batches behind garbage that replay stops at.
		s.failed = fmt.Errorf("wal: append wrote a partial frame: %w", err)
		return s.failed
	}
	s.segOff += int64(len(frame))
	s.stats.Frames++
	s.stats.Records += int64(len(recs))
	s.stats.SinceSnapshot += int64(len(recs))
	s.sinceSnap.Add(int64(len(recs)))
	s.stats.Bytes += int64(len(frame))
	if s.opts.Policy == SyncAlways {
		if err := s.seg.Sync(); err != nil {
			// A failed fsync marks the dirty pages clean in the kernel; a
			// later "successful" Sync would vouch for a frame that never
			// reached disk. Same rule as syncLoop: poison.
			s.failed = fmt.Errorf("wal: fsync failed: %w", err)
			return s.failed
		}
		s.stats.Fsyncs++
	} else {
		s.dirty = true
	}
	s.notifyLocked()
	return nil
}

// Snapshot atomically replaces the store's on-disk state with a binary
// snapshot of recs — the table's full, time-sorted record slice — then
// rotates the log to a fresh segment and deletes the superseded files. The
// caller must guarantee that recs reflects exactly the batches appended so
// far (tkplq.System.Snapshot holds its ingest lock across the read and this
// call). Snapshot satisfies tkplq.Snapshotter.
func (s *Store) Snapshot(recs []iupt.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	newSeq := s.seq + 1

	// Write the snapshot to a temp file and rename it into place: readers
	// (and recovery) only ever see a complete snapshot or none.
	tmp := filepath.Join(s.dir, snapshotName(newSeq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := iupt.WriteRecordsBinary(f, recs); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	final := filepath.Join(s.dir, snapshotName(newSeq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	// The rename IS the commit point: a restart will recover snapshot
	// newSeq and discard older segments, so any failure from here on must
	// poison the store — appending more acknowledged batches to the old
	// segment would lose them on that restart.
	if err := syncDir(s.dir); err != nil {
		s.failed = fmt.Errorf("wal: rotation failed after snapshot %d committed: %w", newSeq, err)
		return s.failed
	}

	// The snapshot is committed: rotate the log. A crash anywhere past this
	// point recovers from snapshot newSeq; the leftovers below are cleaned
	// up by the next Open.
	oldSeq := s.seq
	if err := s.rotateLocked(newSeq); err != nil {
		return err
	}
	// Best-effort: the old snapshot is subsumed by snapshot newSeq and would
	// be removed by the next Open anyway.
	_ = os.Remove(filepath.Join(s.dir, snapshotName(oldSeq)))
	return nil
}

// rotateLocked swings the log onto a fresh segment at newSeq and deletes the
// superseded one. The caller must have durably committed an artifact
// (snapshot or sealed partition) at newSeq that subsumes every frame of the
// current segment: recovery will drop segments older than newSeq, so a
// rotation FAILURE here must poison the store — continuing to append to the
// old segment would silently lose acknowledged batches on restart. Callers
// must hold s.mu.
func (s *Store) rotateLocked(newSeq uint64) error {
	seg, err := createSegment(filepath.Join(s.dir, segmentName(newSeq)))
	if err != nil {
		s.failed = fmt.Errorf("wal: rotation failed after commit of %d: %w", newSeq, err)
		return s.failed
	}
	old := s.seg
	s.seg = seg
	s.seq = newSeq
	s.segOff = segHdrLen
	s.dirty = false
	s.stats.Snapshots++
	s.stats.SnapshotSeq = newSeq
	s.stats.SinceSnapshot = 0
	s.sinceSnap.Store(0)
	// Cleanup is best-effort: rotated-out segments are subsumed by artifact
	// newSeq and removed by the next Open. With KeepSegments > 0 the most
	// recent ones stay behind for replication catch-up; in steady state one
	// segment leaves the window per rotation.
	_ = old.Close()
	if drop := int64(newSeq) - int64(s.opts.KeepSegments) - 1; drop >= 0 {
		_ = os.Remove(filepath.Join(s.dir, segmentName(uint64(drop))))
	}
	s.notifyLocked()
	if err := syncDir(s.dir); err != nil {
		// The new segment's dirent may not be durable: a machine crash
		// could recover artifact newSeq without the segment, losing frames
		// appended meanwhile. Refuse further appends.
		s.failed = fmt.Errorf("wal: rotation failed after commit of %d: %w", newSeq, err)
		return s.failed
	}
	return nil
}

// RotateAfterCommit rotates the log onto a fresh segment at sequence Seq()+1
// and deletes the superseded segment, without writing a snapshot. The caller
// must first have durably committed an external artifact at that sequence
// that contains every record of the current segment — internal/parts calls
// this after renaming a sealed partition into place — and must serialize the
// commit+rotate pair with AppendBatch (the System's ingest lock does).
// Returns the new sequence. On error the store is poisoned, exactly like a
// failed Snapshot rotation.
func (s *Store) RotateAfterCommit() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return 0, err
	}
	newSeq := s.seq + 1
	if err := s.rotateLocked(newSeq); err != nil {
		return 0, err
	}
	return newSeq, nil
}

// Seq returns the current rotation sequence: the suffix of the active log
// segment and of the newest committed snapshot or base artifact. The next
// commit (Snapshot or RotateAfterCommit) uses Seq()+1.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Poison marks the store failed: every later AppendBatch, Snapshot and
// RotateAfterCommit returns err until a restart recovers the directory.
// For callers layering their own commit protocol on the log (internal/parts):
// once an external artifact at Seq()+1 is committed, a failure before
// RotateAfterCommit succeeds strands the current segment — recovery drops it
// as subsumed — so the only safe continuation is no continuation.
func (s *Store) Poison(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil && !s.closed {
		s.failed = err
	}
}

// usableLocked reports why the store cannot accept writes (closed, or
// poisoned by a failed rotation). Callers must hold s.mu.
func (s *Store) usableLocked() error {
	if s.closed {
		return errors.New("wal: store is closed")
	}
	if s.failed != nil {
		return fmt.Errorf("wal: store is failed (restart to recover): %w", s.failed)
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// RecordsSinceSnapshot reports the records appended since the last
// snapshot without taking the store lock — cheap enough to probe on every
// ingest (the server's SnapshotEvery trigger does).
func (s *Store) RecordsSinceSnapshot() int64 { return s.sinceSnap.Load() }

// syncLoop is the SyncInterval background fsync timer.
func (s *Store) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.failed == nil && s.dirty {
				if err := s.seg.Sync(); err != nil {
					// A failed fsync marks the dirty pages clean in the
					// kernel: a later "successful" Sync would report
					// durability for frames that never hit disk. Poison the
					// store so ingest fails loudly instead of silently
					// widening the loss window.
					s.failed = fmt.Errorf("wal: background fsync failed: %w", err)
				} else {
					s.dirty = false
					s.stats.Fsyncs++
				}
			}
			s.mu.Unlock()
		}
	}
}

// Close fsyncs and closes the active segment. Close is idempotent; after
// Close, AppendBatch and Snapshot fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.stop
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if serr := s.seg.Sync(); serr != nil {
		err = serr
	} else {
		s.stats.Fsyncs++
	}
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	unlockDir(s.lock)
	return err
}

// --- Replication hooks -----------------------------------------------------
//
// internal/repl streams a primary's committed log to followers byte for
// byte: the source tails the segment files (never past Position), followers
// re-append the decoded batches through their own store, and because
// encodeBatch is deterministic and every batch is exactly one frame, a
// caught-up follower's segment is bit-identical to the primary's.

// SegmentHeaderLen is the length of the segment file header ("TKWL" +
// version), the offset of the first frame in every segment.
const SegmentHeaderLen = segHdrLen

// Position returns the committed write position: the active segment's
// sequence and its byte length including every fully-appended frame. Readers
// of the segment file must never read past the returned offset — bytes
// beyond it may be a frame mid-write.
func (s *Store) Position() (seq uint64, off int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq, s.segOff
}

// Failed returns the poison error, or nil while the store accepts writes.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// SegmentPath returns the path of the segment with the given sequence
// (which need not exist).
func (s *Store) SegmentPath(seq uint64) string {
	return filepath.Join(s.dir, segmentName(seq))
}

// Watch registers a wakeup channel poked (non-blocking, so a slow consumer
// coalesces pokes) after every appended frame and every rotation. The
// returned cancel must be called to unregister.
func (s *Store) Watch() (<-chan struct{}, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watchers == nil {
		s.watchers = make(map[uint64]chan struct{})
	}
	id := s.nextWatch
	s.nextWatch++
	ch := make(chan struct{}, 1)
	s.watchers[id] = ch
	cancel := func() {
		s.mu.Lock()
		delete(s.watchers, id)
		s.mu.Unlock()
	}
	return ch, cancel
}

// notifyLocked pokes every watcher. Callers must hold s.mu.
func (s *Store) notifyLocked() {
	for _, ch := range s.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// ErrPartialFrame reports that a buffer ends mid-frame: more bytes are
// needed before the first frame is complete.
var ErrPartialFrame = errors.New("wal: partial frame")

// NextFrame validates the first frame in data (which must start at a frame
// boundary) and returns its total length, header included. It returns
// ErrPartialFrame when data ends mid-frame and a hard error for a garbage
// length or CRC mismatch.
func NextFrame(data []byte) (int, error) {
	if len(data) < frameHdrLen {
		return 0, ErrPartialFrame
	}
	plen := int64(binary.LittleEndian.Uint32(data))
	if plen > maxFrameLen {
		return 0, fmt.Errorf("wal: frame length %d exceeds the %d-byte bound", plen, maxFrameLen)
	}
	total := frameHdrLen + int(plen)
	if len(data) < total {
		return 0, ErrPartialFrame
	}
	crc := binary.LittleEndian.Uint32(data[4:])
	if crc32.Checksum(data[frameHdrLen:total], crcTable) != crc {
		return 0, errors.New("wal: frame CRC mismatch")
	}
	return total, nil
}

// DecodeFrame parses one complete frame (header + payload) back into its
// batch, verifying length and CRC.
func DecodeFrame(frame []byte) ([]iupt.Record, error) {
	total, err := NextFrame(frame)
	if err != nil {
		return nil, err
	}
	if total != len(frame) {
		return nil, fmt.Errorf("wal: frame is %d bytes, buffer holds %d", total, len(frame))
	}
	return decodeBatch(frame[frameHdrLen:total])
}

// ScanSegment walks a segment file without applying it: it returns the byte
// length of the valid frame prefix (header included), the CRC32C of those
// prefix bytes, and the number of complete frames. A torn or corrupt tail
// simply ends the prefix. A follower's bootstrap scans its directory with
// this to report a durable (offset, checksum) position the primary can
// verify before resuming the stream mid-segment.
func ScanSegment(path string) (validOff int64, crc uint32, frames int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(data) < segHdrLen || string(data[:4]) != segMagic ||
		binary.LittleEndian.Uint16(data[4:6]) != segVersion {
		return 0, 0, 0, fmt.Errorf("wal: %s: bad segment header", path)
	}
	off := int64(segHdrLen)
	for off < int64(len(data)) {
		n, err := NextFrame(data[off:])
		if err != nil {
			break
		}
		off += int64(n)
		frames++
	}
	return off, crc32.Checksum(data[:off], crcTable), frames, nil
}

// PrefixCRC returns the CRC32C of the segment file's first n bytes, or an
// error if the file is shorter. The replication source uses it to check
// that a follower's reported position is a byte-identical prefix of its own
// segment before resuming the stream there.
func PrefixCRC(path string, n int64) (uint32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if int64(len(data)) < n {
		return 0, fmt.Errorf("wal: %s is %d bytes, shorter than prefix %d", path, len(data), n)
	}
	return crc32.Checksum(data[:n], crcTable), nil
}

// encodeBatch renders one batch as a frame payload: record count, then each
// record as (oid int32, t int64, sample count uint16, samples as
// (loc int32, prob float64)) — the per-record layout of the binary IUPT
// format (docs/FORMATS.md).
func encodeBatch(recs []iupt.Record) ([]byte, error) {
	buf := make([]byte, 0, 4+len(recs)*24)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for i := range recs {
		rec := &recs[i]
		if len(rec.Samples) > math.MaxUint16 {
			return nil, fmt.Errorf("wal: record %d has %d samples, exceeding format limit", i, len(rec.Samples))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(rec.OID)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.T))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Samples)))
		for _, smp := range rec.Samples {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(smp.Loc)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(smp.Prob))
		}
	}
	return buf, nil
}

// decodeBatch parses a CRC-verified frame payload back into records.
func decodeBatch(payload []byte) ([]iupt.Record, error) {
	off := 0
	u16 := func() (uint16, bool) {
		if off+2 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint16(payload[off:])
		off += 2
		return v, true
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v, true
	}
	count, ok := u32()
	if !ok {
		return nil, errors.New("wal: short payload")
	}
	// A record needs at least 14 payload bytes; clamp the pre-allocation so
	// a corrupt count in a CRC-consistent frame cannot request gigabytes.
	capHint := int64(count)
	if max := int64(len(payload)) / 14; capHint > max {
		capHint = max
	}
	recs := make([]iupt.Record, 0, capHint)
	for i := uint32(0); i < count; i++ {
		oid, ok1 := u32()
		t, ok2 := u64()
		n, ok3 := u16()
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("wal: payload truncated in record %d", i)
		}
		samples := make(iupt.SampleSet, n)
		for j := range samples {
			loc, ok1 := u32()
			prob, ok2 := u64()
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("wal: payload truncated in record %d sample %d", i, j)
			}
			samples[j].Loc = indoor.PLocID(int32(loc))
			samples[j].Prob = math.Float64frombits(prob)
		}
		recs = append(recs, iupt.Record{
			OID:     iupt.ObjectID(int32(oid)),
			T:       iupt.Time(int64(t)),
			Samples: samples,
		})
	}
	if off != len(payload) {
		return nil, fmt.Errorf("wal: %d trailing payload bytes", len(payload)-off)
	}
	return recs, nil
}

// replaySegment applies every complete frame of one segment to the table,
// stopping at the first invalid one. In the final segment (tolerateTorn)
// an invalid frame ends replay cleanly at the last complete batch and
// reports the valid offset for truncation: an *incomplete* tail — header
// or payload running past EOF, or a garbage length field — is a torn
// write from a crash mid-append; a frame that is fully present but fails
// its CRC is additionally counted in corruptFrames, because a single-write
// append can only shorten the file — a mangled complete frame means
// either bit rot or an unfsynced page lost out of order by a machine
// crash under SyncInterval (whose documented loss window covers it).
// Recovery proceeds — a serving daemon must boot after the crash cases
// the fsync policy admits — but the count is surfaced in Stats and the
// daemon log so silent bit rot is still visible. In a non-final segment
// any invalid frame is a hard error, as is a CRC-valid frame that fails
// to decode.
func replaySegment(path string, table *iupt.Table, tolerateTorn bool) (frames, records, validOff, tornBytes, corruptFrames int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	if len(data) < segHdrLen {
		// The 6-byte header is written (and fsynced) at creation with a
		// single write; a shorter file is the creation itself torn by a
		// crash — the file holds no frames. Tolerable in the final segment.
		return 0, 0, 0, int64(len(data)), 0, errShortSegment
	}
	if string(data[:4]) != segMagic {
		return 0, 0, 0, 0, 0, fmt.Errorf("bad segment header")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != segVersion {
		return 0, 0, 0, 0, 0, fmt.Errorf("unsupported segment version %d", v)
	}
	off := int64(segHdrLen)
	for {
		rest := int64(len(data)) - off
		if rest == 0 {
			break
		}
		torn := false
		if rest < frameHdrLen {
			torn = true
		} else {
			plen := int64(binary.LittleEndian.Uint32(data[off:]))
			crc := binary.LittleEndian.Uint32(data[off+4:])
			switch {
			case plen > maxFrameLen:
				torn = true // garbage length: a partially-written header
			case off+frameHdrLen+plen > int64(len(data)):
				torn = true // payload runs past EOF: a partially-written frame
			case crc32.Checksum(data[off+frameHdrLen:off+frameHdrLen+plen], crcTable) != crc:
				torn = true // complete frame, mangled bytes: see doc comment
				corruptFrames++
			default:
				payload := data[off+frameHdrLen : off+frameHdrLen+plen]
				recs, derr := decodeBatch(payload)
				if derr != nil {
					return frames, records, off, 0, corruptFrames, fmt.Errorf("frame at offset %d: %w", off, derr)
				}
				for _, rec := range recs {
					table.Append(rec)
				}
				frames++
				records += int64(len(recs))
				off += frameHdrLen + plen
			}
		}
		if torn {
			if !tolerateTorn {
				return frames, records, off, rest, corruptFrames, fmt.Errorf("invalid frame at offset %d in non-final segment", off)
			}
			return frames, records, off, rest, corruptFrames, nil
		}
	}
	return frames, records, off, 0, 0, nil
}
