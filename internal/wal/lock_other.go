//go:build !unix

package wal

import "os"

// Non-unix platforms run without the advisory directory lock; the
// single-writer requirement is then on the operator (docs/OPERATIONS.md).
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}
