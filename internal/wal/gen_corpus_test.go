package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tkplq/internal/indoor"
	"tkplq/internal/iupt"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate the committed seed corpus")
	}
	recs := []iupt.Record{
		{OID: 1, T: 10, Samples: iupt.SampleSet{{Loc: indoor.PLocID(3), Prob: 0.5}, {Loc: indoor.PLocID(4), Prob: 0.5}}},
		{OID: 2, T: 11, Samples: iupt.SampleSet{{Loc: indoor.PLocID(5), Prob: 1}}},
	}
	valid := fuzzSegment(t, recs[:1], recs[1:])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x10
	bomb := fuzzSegment(t)
	bomb = binary.LittleEndian.AppendUint32(bomb, maxFrameLen-1)
	bomb = binary.LittleEndian.AppendUint32(bomb, 0)
	seeds := map[string][]byte{
		"valid":       valid,
		"torn":        valid[:len(valid)-3],
		"corrupt":     corrupt,
		"empty":       {},
		"magic-only":  []byte(segMagic),
		"header-only": fuzzSegment(t),
		"len-bomb":    bomb,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
