package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"tkplq/internal/indoor"
	"tkplq/internal/iupt"
)

// fuzzSegment builds a log segment image from batches of records, using the
// same encoding AppendBatch writes.
func fuzzSegment(tb testing.TB, batches ...[]iupt.Record) []byte {
	tb.Helper()
	seg := []byte(segMagic)
	seg = binary.LittleEndian.AppendUint16(seg, segVersion)
	for _, recs := range batches {
		payload, err := encodeBatch(recs)
		if err != nil {
			tb.Fatal(err)
		}
		seg = binary.LittleEndian.AppendUint32(seg, uint32(len(payload)))
		seg = binary.LittleEndian.AppendUint32(seg, crc32.Checksum(payload, crcTable))
		seg = append(seg, payload...)
	}
	return seg
}

// FuzzWALReplay feeds arbitrary bytes to the segment replayer and checks the
// recovery invariants on untrusted input: replay never panics, never claims a
// valid offset past the file, and the records it reports are exactly the
// records it appended — whether the tail is tolerated (active segment) or not
// (sealed segment).
func FuzzWALReplay(f *testing.F) {
	recs := []iupt.Record{
		{OID: 1, T: 10, Samples: iupt.SampleSet{{Loc: indoor.PLocID(3), Prob: 0.5}, {Loc: indoor.PLocID(4), Prob: 0.5}}},
		{OID: 2, T: 11, Samples: iupt.SampleSet{{Loc: indoor.PLocID(5), Prob: 1}}},
	}
	valid := fuzzSegment(f, recs[:1], recs[1:])
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn final frame
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0x10
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(fuzzSegment(f)) // header only
	// A frame header promising a payload far past EOF.
	bomb := fuzzSegment(f)
	bomb = binary.LittleEndian.AppendUint32(bomb, maxFrameLen-1)
	bomb = binary.LittleEndian.AppendUint32(bomb, 0)
	f.Add(bomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal-00000000.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		for _, tolerateTorn := range []bool{true, false} {
			table := iupt.NewTable()
			frames, records, validOff, tornBytes, corruptFrames, err := replaySegment(path, table, tolerateTorn)
			if err != nil {
				continue // refused loudly: fine
			}
			if validOff < 0 || validOff > int64(len(data)) {
				t.Fatalf("validOff %d outside [0,%d]", validOff, len(data))
			}
			if frames < 0 || records < 0 || tornBytes < 0 || corruptFrames < 0 {
				t.Fatalf("negative counters: frames=%d records=%d torn=%d corrupt=%d",
					frames, records, tornBytes, corruptFrames)
			}
			if int64(table.Len()) != records {
				t.Fatalf("table holds %d records, replay reported %d", table.Len(), records)
			}
		}
	})
}
