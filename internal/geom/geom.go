// Package geom provides the planar geometry primitives used throughout the
// repository: points, axis-aligned rectangles (MBRs), line segments and
// ellipses. Indoor floor plans are modeled with axis-aligned partitions, so
// rectangles carry most of the load; ellipses exist for the UR baseline's
// uncertainty regions.
//
// All coordinates are in meters. A third pseudo-dimension, the floor index,
// is handled by the indoor model rather than here: geometry within one floor
// is strictly planar.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Segment is a straight line segment from A to B.
type Segment struct {
	A, B Point
}

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// At returns the point a fraction t along the segment.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.X*d.X + d.Y*d.Y
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := ((p.X-s.A.X)*d.X + (p.Y-s.A.Y)*d.Y) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist(s.At(t))
}
