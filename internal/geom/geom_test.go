package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); !almostEq(d, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := Pt(0, 0).Dist2(Pt(3, 4)); !almostEq(d2, 25, 1e-12) {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
	if n := Pt(3, 4).Norm(); !almostEq(n, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestPointLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestSegment(t *testing.T) {
	s := Segment{Pt(0, 0), Pt(10, 0)}
	if !almostEq(s.Len(), 10, 1e-12) {
		t.Errorf("Len = %v", s.Len())
	}
	if s.Midpoint() != Pt(5, 0) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if d := s.DistToPoint(Pt(5, 3)); !almostEq(d, 3, 1e-12) {
		t.Errorf("DistToPoint mid = %v", d)
	}
	if d := s.DistToPoint(Pt(-4, 3)); !almostEq(d, 5, 1e-12) {
		t.Errorf("DistToPoint beyond A = %v", d)
	}
	if d := s.DistToPoint(Pt(14, 3)); !almostEq(d, 5, 1e-12) {
		t.Errorf("DistToPoint beyond B = %v", d)
	}
	zero := Segment{Pt(1, 1), Pt(1, 1)}
	if d := zero.DistToPoint(Pt(4, 5)); !almostEq(d, 5, 1e-12) {
		t.Errorf("degenerate segment dist = %v", d)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("R normalization = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 4, 3)
	if !almostEq(r.Area(), 12, 1e-12) {
		t.Errorf("Area = %v", r.Area())
	}
	if !almostEq(r.Perimeter(), 14, 1e-12) {
		t.Errorf("Perimeter = %v", r.Perimeter())
	}
	if r.Center() != Pt(2, 1.5) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.ContainsPoint(Pt(0, 0)) || !r.ContainsPoint(Pt(4, 3)) {
		t.Error("boundary points should be contained")
	}
	if r.ContainsPoint(Pt(4.001, 3)) {
		t.Error("outside point contained")
	}
}

func TestRectEmpty(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty rect should have zero measures")
	}
	r := R(0, 0, 1, 1)
	if got := e.Union(r); got != r {
		t.Errorf("empty union identity failed: %v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("union with empty failed: %v", got)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect should intersect nothing")
	}
	if !r.ContainsRect(e) {
		t.Error("every rect contains the empty rect")
	}
	if e.ContainsRect(r) {
		t.Error("empty rect contains nothing")
	}
}

func TestRectIntersection(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 6, 6)
	got := a.Intersection(b)
	if got != R(2, 2, 4, 4) {
		t.Errorf("Intersection = %v", got)
	}
	c := R(5, 5, 7, 7)
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
	// Touching edges intersect with zero area.
	d := R(4, 0, 8, 4)
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
	if a.Intersection(d).Area() != 0 {
		t.Error("touching intersection should have zero area")
	}
}

func TestRectDistClamp(t *testing.T) {
	r := R(0, 0, 2, 2)
	if d := r.DistToPoint(Pt(1, 1)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 2)); !almostEq(d, 3, 1e-12) {
		t.Errorf("side dist = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 6)); !almostEq(d, 5, 1e-12) {
		t.Errorf("corner dist = %v", d)
	}
	if c := r.Clamp(Pt(5, -1)); c != Pt(2, 0) {
		t.Errorf("Clamp = %v", c)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(1, 1, 3, 3)
	if got := r.Expand(1); got != R(0, 0, 4, 4) {
		t.Errorf("Expand(1) = %v", got)
	}
	if got := r.Expand(-2); !got.IsEmpty() {
		t.Errorf("over-shrink should be empty, got %v", got)
	}
}

func TestRectEnlargement(t *testing.T) {
	a := R(0, 0, 2, 2)
	b := R(3, 0, 4, 2)
	// Union is [0,0,4,2] area 8, a has area 4 -> enlargement 4.
	if e := a.Enlargement(b); !almostEq(e, 4, 1e-12) {
		t.Errorf("Enlargement = %v", e)
	}
	if e := a.Enlargement(R(0.5, 0.5, 1, 1)); e != 0 {
		t.Errorf("contained enlargement = %v", e)
	}
}

func TestUnionAll(t *testing.T) {
	got := UnionAll(R(0, 0, 1, 1), R(5, 5, 6, 6), R(-2, 3, 0, 4))
	if got != R(-2, 0, 6, 6) {
		t.Errorf("UnionAll = %v", got)
	}
	if !UnionAll().IsEmpty() {
		t.Error("UnionAll() should be empty")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(5, 5), 2)
	if r != R(3, 3, 7, 7) {
		t.Errorf("RectAround = %v", r)
	}
}

// Property: union is commutative, associative in area, and contains both.
func TestRectUnionProperties(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		a := R(clamp(ax1), clamp(ay1), clamp(ax2), clamp(ay2))
		b := R(clamp(bx1), clamp(by1), clamp(bx2), clamp(by2))
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in both operands and intersects
// symmetrically.
func TestRectIntersectionProperties(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		a := R(clamp(ax1), clamp(ay1), clamp(ax2), clamp(ay2))
		b := R(clamp(bx1), clamp(by1), clamp(bx2), clamp(by2))
		i := a.Intersection(b)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		if i.IsEmpty() {
			return true
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEllipseBasics(t *testing.T) {
	// Circle: coincident foci, SumDist = 2r.
	c := NewEllipse(Pt(0, 0), Pt(0, 0), 4) // radius 2
	if !almostEq(c.SemiMajor(), 2, 1e-12) || !almostEq(c.SemiMinor(), 2, 1e-12) {
		t.Errorf("circle axes = %v, %v", c.SemiMajor(), c.SemiMinor())
	}
	if !almostEq(c.Area(), math.Pi*4, 1e-9) {
		t.Errorf("circle area = %v", c.Area())
	}
	if !c.Contains(Pt(2, 0)) || c.Contains(Pt(2.01, 0)) {
		t.Error("circle containment broken")
	}
}

func TestEllipseClamping(t *testing.T) {
	e := NewEllipse(Pt(0, 0), Pt(10, 0), 2) // sumDist below focal distance
	if e.SumDist < 10 {
		t.Errorf("SumDist should be clamped to focal distance, got %v", e.SumDist)
	}
	if e.SemiMinor() != 0 {
		t.Errorf("degenerate ellipse should have zero semi-minor, got %v", e.SemiMinor())
	}
}

func TestEllipseBounds(t *testing.T) {
	// Axis-aligned ellipse along X: foci (±3, 0), a=5 => b=4.
	e := NewEllipse(Pt(-3, 0), Pt(3, 0), 10)
	b := e.Bounds()
	if !almostEq(b.MinX, -5, 1e-9) || !almostEq(b.MaxX, 5, 1e-9) ||
		!almostEq(b.MinY, -4, 1e-9) || !almostEq(b.MaxY, 4, 1e-9) {
		t.Errorf("Bounds = %v", b)
	}
	// Rotated 90 degrees: foci (0, ±3).
	e2 := NewEllipse(Pt(0, -3), Pt(0, 3), 10)
	b2 := e2.Bounds()
	if !almostEq(b2.MaxY, 5, 1e-9) || !almostEq(b2.MaxX, 4, 1e-9) {
		t.Errorf("rotated Bounds = %v", b2)
	}
}

func TestEllipseOverlapFraction(t *testing.T) {
	e := NewEllipse(Pt(-3, 0), Pt(3, 0), 10) // a=5, b=4
	full := e.OverlapFraction(R(-10, -10, 10, 10), 64)
	if !almostEq(full, 1, 1e-9) {
		t.Errorf("full overlap = %v, want 1", full)
	}
	none := e.OverlapFraction(R(20, 20, 30, 30), 64)
	if none != 0 {
		t.Errorf("no overlap = %v, want 0", none)
	}
	// Right half-plane: should be ~0.5 by symmetry.
	half := e.OverlapFraction(R(0, -10, 10, 10), 128)
	if !almostEq(half, 0.5, 0.03) {
		t.Errorf("half overlap = %v, want ~0.5", half)
	}
}

func TestEllipseOverlapDegenerate(t *testing.T) {
	// Degenerate ellipse = focal segment along [0,4]x{0}. Grid samples land
	// on the segment, so the overlap fraction is the covered length share.
	e := NewEllipse(Pt(0, 0), Pt(4, 0), 0)
	if f := e.OverlapFraction(R(1, -1, 3, 1), 16); !almostEq(f, 0.5, 0.1) {
		t.Errorf("degenerate segment overlap = %v, want ~0.5", f)
	}
	if f := e.OverlapFraction(R(10, 10, 11, 11), 16); f != 0 {
		t.Errorf("degenerate disjoint = %v, want 0", f)
	}
}

// Property: OverlapFraction is within [0, 1] and monotone under rect growth.
func TestEllipseOverlapProperties(t *testing.T) {
	f := func(fx, fy, sum, rx, ry, rw, rh float64) bool {
		norm := func(v, scale float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(math.Abs(v), scale)
		}
		e := NewEllipse(Pt(norm(fx, 50), norm(fy, 50)), Pt(norm(fy, 50), norm(fx, 50)), norm(sum, 100))
		r := R(norm(rx, 50), norm(ry, 50), norm(rx, 50)+norm(rw, 50), norm(ry, 50)+norm(rh, 50))
		frac := e.OverlapFraction(r, 24)
		if frac < 0 || frac > 1 {
			return false
		}
		bigger := e.OverlapFraction(r.Expand(10), 24)
		return bigger >= frac-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
