package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle with min/max corners. A Rect is valid
// when MinX <= MaxX and MinY <= MaxY. The zero Rect is a degenerate
// rectangle at the origin. EmptyRect returns an explicitly empty rectangle
// suitable as the identity for Union.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R builds a Rect from two corner coordinates, normalizing order.
func R(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectAround returns the square of side 2r centered at p.
func RectAround(p Point, r float64) Rect {
	return Rect{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions to the other operand.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the extent along X (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the extent along Y (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the rectangle's area (0 for empty rectangles).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the rectangle's perimeter (0 for empty rectangles).
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// ContainsPoint reports whether p lies in r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	if r.IsEmpty() {
		return false
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point
// (boundary touch counts).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the overlapping region of r and s
// (possibly empty).
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Enlargement returns the area increase required for r to absorb s.
// Used by R-tree insertion heuristics.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// DistToPoint returns the minimum distance from p to r
// (0 if p is inside r).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.MinX, math.Min(r.MaxX, p.X)),
		Y: math.Max(r.MinY, math.Min(r.MaxY, p.Y)),
	}
}

// Expand returns r grown by d on every side. Negative d shrinks and may
// produce an empty rectangle.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.2f,%.2f - %.2f,%.2f]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// UnionAll returns the smallest rectangle containing all inputs.
func UnionAll(rects ...Rect) Rect {
	out := EmptyRect()
	for _, r := range rects {
		out = out.Union(r)
	}
	return out
}
