package geom

import "math"

// Ellipse is the locus of points whose summed distance to the two foci is at
// most SumDist. This is the uncertainty-region shape of the UR baseline: an
// object detected by reader F1 at time t1 and reader F2 at time t2 moving at
// most Vmax must lie within the ellipse with foci at the reader positions and
// SumDist = Vmax * (t2 - t1), clamped below by the focal distance.
type Ellipse struct {
	F1, F2  Point
	SumDist float64
}

// NewEllipse builds an ellipse, clamping SumDist up to the focal distance so
// the result is never empty (a degenerate ellipse collapses to the focal
// segment).
func NewEllipse(f1, f2 Point, sumDist float64) Ellipse {
	focal := f1.Dist(f2)
	if sumDist < focal {
		sumDist = focal
	}
	return Ellipse{F1: f1, F2: f2, SumDist: sumDist}
}

// Contains reports whether p lies in the ellipse (boundary inclusive).
func (e Ellipse) Contains(p Point) bool {
	return p.Dist(e.F1)+p.Dist(e.F2) <= e.SumDist+1e-12
}

// SemiMajor returns the semi-major axis length a = SumDist/2.
func (e Ellipse) SemiMajor() float64 { return e.SumDist / 2 }

// SemiMinor returns the semi-minor axis length b = sqrt(a² - c²) where c is
// half the focal distance.
func (e Ellipse) SemiMinor() float64 {
	a := e.SemiMajor()
	c := e.F1.Dist(e.F2) / 2
	d := a*a - c*c
	if d <= 0 {
		return 0
	}
	return math.Sqrt(d)
}

// Area returns the ellipse area pi*a*b.
func (e Ellipse) Area() float64 { return math.Pi * e.SemiMajor() * e.SemiMinor() }

// Bounds returns the ellipse's minimum bounding rectangle.
func (e Ellipse) Bounds() Rect {
	a, b := e.SemiMajor(), e.SemiMinor()
	cx := (e.F1.X + e.F2.X) / 2
	cy := (e.F1.Y + e.F2.Y) / 2
	// Rotated ellipse MBR: half-extents along X and Y.
	dx, dy := e.F2.X-e.F1.X, e.F2.Y-e.F1.Y
	l := math.Hypot(dx, dy)
	var cos, sin float64
	if l == 0 {
		cos, sin = 1, 0
	} else {
		cos, sin = dx/l, dy/l
	}
	ex := math.Sqrt(a*a*cos*cos + b*b*sin*sin)
	ey := math.Sqrt(a*a*sin*sin + b*b*cos*cos)
	return Rect{MinX: cx - ex, MinY: cy - ey, MaxX: cx + ex, MaxY: cy + ey}
}

// OverlapFraction estimates what fraction of the ellipse's area lies inside
// rect, using a deterministic grid sample of n×n points over the ellipse's
// bounding box. n must be >= 2; callers typically use 32. The estimate is
// exact in the limit and accurate to ~1/n for the axis-aligned shapes used
// by the indoor model, which is ample for the UR baseline's ranking use.
func (e Ellipse) OverlapFraction(rect Rect, n int) float64 {
	if n < 2 {
		n = 2
	}
	mbr := e.Bounds()
	if mbr.IsEmpty() || !mbr.Intersects(rect) {
		return 0
	}
	inEllipse, inBoth := 0, 0
	for i := 0; i < n; i++ {
		// Cell-centered samples avoid boundary double-counting bias.
		x := mbr.MinX + (float64(i)+0.5)/float64(n)*mbr.Width()
		for j := 0; j < n; j++ {
			y := mbr.MinY + (float64(j)+0.5)/float64(n)*mbr.Height()
			p := Point{x, y}
			if !e.Contains(p) {
				continue
			}
			inEllipse++
			if rect.ContainsPoint(p) {
				inBoth++
			}
		}
	}
	if inEllipse == 0 {
		// Degenerate ellipse (zero area): fall back to testing the focal
		// segment midpoint.
		if rect.ContainsPoint(Segment{e.F1, e.F2}.Midpoint()) {
			return 1
		}
		return 0
	}
	return float64(inBoth) / float64(inEllipse)
}
