package repl

// HTTP paths of the replication endpoints. The primary's server mounts
// Serve behind PathReplicate and Ack behind PathReplicateAck; a follower's
// server mounts promotion behind PathPromote. They live here so the
// follower's dialer and the server's mux cannot drift apart.
const (
	// PathReplicate is the long-lived streaming session: the follower POSTs
	// its Handshake and reads stream frames until the connection dies.
	PathReplicate = "/v2/replicate"
	// PathReplicateAck receives the follower's out-of-band progress reports.
	PathReplicateAck = "/v2/replicate/ack"
	// PathPromote asks a follower to stop following and accept writes; the
	// router calls it during failover. Idempotent.
	PathPromote = "/v2/promote"
)
