package repl

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"tkplq/internal/iupt"
	"tkplq/internal/retry"
	"tkplq/internal/wal"
)

// Applier is the surface a follower applies the replicated stream through.
// Apply must route the batch through the same ingest serialization the
// primary used (tkplq.System's ingest lock), so the follower's own WAL
// re-encodes it into the byte-identical frame; Seal must seal the mutable
// head, producing partition seq. Position reports the durable WAL position
// (the active segment's sequence — which equals the newest seal sequence —
// and its committed byte length).
type Applier interface {
	Apply(recs []iupt.Record) error
	Seal(seq uint64) error
	Position() (seq uint64, off int64)
	SegmentPath(seq uint64) string
}

// FollowerConfig parametrizes a Follower.
type FollowerConfig struct {
	// Dir is the data directory the follower bootstraps into. Required.
	Dir string
	// Self is the follower's advertised identity, the session key on the
	// primary. Required.
	Self string
	// Primaries lists the candidate upstream addresses (host:port), tried
	// round-robin: after a failover any replica-set sibling may be the
	// primary. Required, at least one.
	Primaries []string
	// Open is called exactly once, after the bootstrap files are applied:
	// it must open the partitioned store over Dir (which recovers to
	// exactly (startSeq, startOff)) and return the Applier the tail streams
	// through. Required.
	Open func(startSeq uint64, startOff int64) (Applier, error)
	// Retry paces reconnects (zero value = retry defaults). The attempt
	// counter resets whenever a session makes progress, so a follower that
	// keeps losing a flaky link backs off to Cap but recovers fast.
	Retry retry.Policy
	// StallTimeout tears down a session over a silently dead link: the
	// primary heartbeats every second or so, so a stream with no frame for
	// this long is broken even if TCP has not noticed (default 15s).
	StallTimeout time.Duration
	// AckEveryBytes coalesces progress reports: one ack per this many
	// applied WAL bytes, plus one on every seal and heartbeat (default
	// 256 KiB; must stay well under the source's WindowBytes).
	AckEveryBytes int64
	// Client performs the HTTP exchanges (default: a client with no
	// timeout — the stream response lives until the link dies).
	Client *http.Client
	// Logf receives lifecycle logs (nil = silent).
	Logf func(format string, args ...any)

	// hookFrame, when set (tests only), runs after every received stream
	// frame; an error aborts the session as if the link died there.
	hookFrame func(typ byte, idx int) error
}

func (c FollowerConfig) stallTimeout() time.Duration {
	if c.StallTimeout <= 0 {
		return 15 * time.Second
	}
	return c.StallTimeout
}

func (c FollowerConfig) ackEvery() int64 {
	if c.AckEveryBytes <= 0 {
		return 256 << 10
	}
	return c.AckEveryBytes
}

func (c FollowerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// FollowerState is a Follower's replication health for /readyz and
// /v1/stats.
type FollowerState struct {
	Primary     string // current (or last) upstream address
	Connected   bool
	Synced      bool // position caught up to the primary's last-known one
	SealSeq     uint64
	WALSeq      uint64
	WALOff      int64
	Frames      int64 // WAL frames applied, lifetime
	Bytes       int64 // WAL bytes applied, lifetime
	Reconnects  int64
	FullResyncs int64
	LastContact time.Time // zero until the first successful exchange
}

// fatalError marks a session error the retry loop must not absorb: the
// follower's state can only be fixed by an operator (or a process restart
// that re-bootstraps).
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

func fatalf(format string, args ...any) error {
	return fatalError{fmt.Errorf(format, args...)}
}

// Follower replicates one primary's shard into a local store: bootstrap by
// file shipping, then tail the WAL stream, reconnecting with backoff until
// promoted or canceled.
type Follower struct {
	cfg FollowerConfig

	openedCh  chan struct{} // closed once the local store is open
	promoteCh chan struct{} // closed by Promote
	runDone   chan struct{} // closed when Run returns

	mu         sync.Mutex
	applier    Applier
	opened     bool
	promoted   bool
	primaryIdx int
	sessID     int64  // current stream's session id (acks echo it)
	sessAddr   string // current stream's primary
	primarySeq uint64 // primary's last-reported committed position
	primaryOff int64
	state      FollowerState
}

// NewFollower builds a Follower; call Run to start replicating.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Dir == "" || cfg.Self == "" || cfg.Open == nil || len(cfg.Primaries) == 0 {
		return nil, errors.New("repl: FollowerConfig needs Dir, Self, Open and at least one primary")
	}
	return &Follower{
		cfg:       cfg,
		openedCh:  make(chan struct{}),
		promoteCh: make(chan struct{}),
		runDone:   make(chan struct{}),
	}, nil
}

// Opened is closed once the bootstrap completed and the local store (and
// Applier) exist: the daemon waits on it before serving reads.
func (f *Follower) Opened() <-chan struct{} { return f.openedCh }

// State returns a snapshot of the follower's replication health.
func (f *Follower) State() FollowerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.state
	if f.applier != nil {
		st.WALSeq, st.WALOff = f.applier.Position()
		st.SealSeq = st.WALSeq
	}
	return st
}

// Promote stops following: it tears down the stream, waits for Run to
// return (so no Apply is in flight), and reports the final position. After
// Promote the store accepts local writes; the caller flips its serving mode.
// Idempotent — concurrent calls all block until the stream is down.
func (f *Follower) Promote() (seq uint64, off int64) {
	f.mu.Lock()
	if !f.promoted {
		f.promoted = true
		close(f.promoteCh)
	}
	f.mu.Unlock()
	<-f.runDone
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.applier != nil {
		return f.applier.Position()
	}
	return 0, 0
}

func (f *Follower) isPromoted() bool {
	select {
	case <-f.promoteCh:
		return true
	default:
		return false
	}
}

func (f *Follower) isOpened() bool {
	select {
	case <-f.openedCh:
		return true
	default:
		return false
	}
}

// Run replicates until the context ends (ctx.Err()), Promote is called
// (nil), or a fatal condition is hit: ErrBootstrapRequired after the store
// opened (restart the process to re-bootstrap) or a protocol/divergence
// violation. Transient errors — unreachable primary, dropped stream, torn
// frame — reconnect forever with capped, jittered backoff, rotating through
// the candidate primaries.
func (f *Follower) Run(ctx context.Context) error {
	defer close(f.runDone)
	attempt := 0
	for {
		if f.isPromoted() {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		progressed, err := f.session(ctx)
		if f.isPromoted() {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var fe fatalError
		if errors.As(err, &fe) {
			return fe.err
		}
		if errors.Is(err, ErrBootstrapRequired) {
			// The primary cannot serve our position live. Before the store
			// is open this cannot happen (bootstrap handshakes never 409);
			// after, only a restart can re-bootstrap.
			return err
		}
		if progressed {
			attempt = 0
		}
		attempt++
		f.mu.Lock()
		f.state.Reconnects++
		f.primaryIdx = (f.primaryIdx + 1) % len(f.cfg.Primaries)
		f.mu.Unlock()
		f.cfg.logf("repl: follower %s: session ended (%v); retry %d", f.cfg.Self, err, attempt)
		// Cap the exponent so the ceiling math stays sane on very long
		// outages; Policy.Cap bounds the delay either way.
		capped := attempt
		if capped > 16 {
			capped = 16
		}
		if err := f.cfg.Retry.Sleep(ctx, capped); err != nil {
			return err
		}
	}
}

func (f *Follower) client() *http.Client {
	if f.cfg.Client != nil {
		return f.cfg.Client
	}
	return http.DefaultClient
}

func (f *Follower) currentPrimary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Primaries[f.primaryIdx%len(f.cfg.Primaries)]
}

// handshake builds the session request: a directory scan before the store
// opens, the applier's live position after.
func (f *Follower) handshake() (Handshake, error) {
	f.mu.Lock()
	ap, opened := f.applier, f.opened
	f.mu.Unlock()
	if !opened {
		h, err := scanDir(f.cfg.Dir)
		if err != nil {
			return Handshake{}, err
		}
		h.Follower = f.cfg.Self
		return h, nil
	}
	seq, off := ap.Position()
	crc, err := wal.PrefixCRC(ap.SegmentPath(seq), off)
	if err != nil {
		return Handshake{}, fatalf("repl: cannot checksum own segment %d: %v", seq, err)
	}
	return Handshake{
		Follower: f.cfg.Self,
		SealSeq:  seq,
		WALSeq:   seq,
		WALOff:   off,
		WALCRC:   crc,
		Live:     true,
	}, nil
}

// session runs one dial → handshake → stream exchange. progressed reports
// whether any frame was applied (resets the retry backoff).
func (f *Follower) session(ctx context.Context) (progressed bool, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-f.promoteCh:
			cancel()
		case <-sctx.Done():
		}
	}()

	h, err := f.handshake()
	if err != nil {
		return false, err
	}
	primary := f.currentPrimary()
	body, err := json.Marshal(h)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, "http://"+primary+PathReplicate, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client().Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusConflict {
			return false, fmt.Errorf("%w (primary %s: %s)", ErrBootstrapRequired, primary, bytes.TrimSpace(msg))
		}
		return false, fmt.Errorf("repl: primary %s: %s: %s", primary, resp.Status, bytes.TrimSpace(msg))
	}

	f.mu.Lock()
	f.sessAddr = primary
	f.state.Primary = primary
	f.state.Connected = true
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.state.Connected = false
		f.mu.Unlock()
	}()

	// The stall watchdog cancels the request context — unblocking the body
	// read — if the primary goes silent past the heartbeat cadence.
	wd := time.AfterFunc(f.cfg.stallTimeout(), cancel)
	defer wd.Stop()

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	frameIdx := 0
	next := func() (byte, []byte, error) {
		typ, payload, err := readFrame(br)
		if err != nil {
			return 0, nil, err
		}
		wd.Reset(f.cfg.stallTimeout())
		if f.cfg.hookFrame != nil {
			if herr := f.cfg.hookFrame(typ, frameIdx); herr != nil {
				return 0, nil, herr
			}
		}
		frameIdx++
		return typ, payload, nil
	}

	typ, payload, err := next()
	if err != nil {
		return false, err
	}
	if typ != frameManifest {
		return false, fmt.Errorf("repl: stream opened with frame type %d, not a manifest", typ)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return false, fmt.Errorf("repl: manifest: %w", err)
	}
	f.mu.Lock()
	f.sessID = m.Session
	if m.StartSeq > f.primarySeq || (m.StartSeq == f.primarySeq && m.StartOff > f.primaryOff) {
		f.primarySeq, f.primaryOff = m.StartSeq, m.StartOff
	}
	f.mu.Unlock()

	if !h.Live {
		if err := f.bootstrap(next, m, h); err != nil {
			return false, err
		}
		progressed = true
	} else {
		if m.FullResync || m.ResetWAL || len(m.Files) > 0 {
			return false, fatalf("repl: primary %s answered a live reconnect with a bootstrap manifest", primary)
		}
		seq, off := f.currentApplier().Position()
		if m.StartSeq != seq || m.StartOff != off {
			return false, fatalf("repl: primary resumes at (%d, %d) but the store is at (%d, %d)", m.StartSeq, m.StartOff, seq, off)
		}
	}
	f.touch()

	applied, err := f.tail(next)
	return progressed || applied, err
}

func (f *Follower) currentApplier() Applier {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applier
}

func (f *Follower) touch() {
	f.mu.Lock()
	f.state.LastContact = time.Now()
	f.mu.Unlock()
}

// bootstrap applies the manifest's partition files and opens the store.
func (f *Follower) bootstrap(next func() (byte, []byte, error), m Manifest, h Handshake) error {
	dir := f.cfg.Dir
	if m.FullResync {
		f.mu.Lock()
		f.state.FullResyncs++
		f.mu.Unlock()
		f.cfg.logf("repl: follower %s: full resync — wiping %s", f.cfg.Self, dir)
		if err := wipeDir(dir, false); err != nil {
			return fatalf("repl: wiping %s: %v", dir, err)
		}
		h.SealSeq = 0
	} else if m.ResetWAL {
		if err := wipeDir(dir, true); err != nil {
			return fatalf("repl: clearing WAL segments in %s: %v", dir, err)
		}
	}

	// The shipped files plus what the directory already holds must cover
	// the seal range without gaps, ending exactly where the WAL tail
	// starts; anything else means this directory's contents and the
	// manifest cannot be combined. Self-heal by wiping and re-dialing: the
	// next handshake reports seal 0 and the primary ships everything.
	prev := h.SealSeq
	for i, fi := range m.Files {
		if i == 0 && prev == 0 {
			// No local partitions: adopt the primary's base wherever it
			// starts (a flat-snapshot migration can base the set above 1).
			prev = fi.SeqLo - 1
		}
		if fi.SeqLo != prev+1 || fi.SeqHi < fi.SeqLo {
			return f.wipeAndRetry("manifest file %s does not extend seal %d", fi.Name, prev)
		}
		prev = fi.SeqHi
	}
	if prev != m.StartSeq {
		return f.wipeAndRetry("manifest covers seals through %d but the WAL tail starts at %d", prev, m.StartSeq)
	}

	fileIdx := 0
	for {
		typ, payload, err := next()
		if err != nil {
			return err
		}
		switch typ {
		case frameFileBegin:
			var fi FileInfo
			if err := json.Unmarshal(payload, &fi); err != nil {
				return fmt.Errorf("repl: file begin: %w", err)
			}
			if fileIdx >= len(m.Files) || fi.Name != m.Files[fileIdx].Name {
				return fmt.Errorf("repl: unexpected file %q in stream", fi.Name)
			}
			if err := f.receiveFile(next, dir, fi); err != nil {
				return err
			}
			fileIdx++
		case frameFilesDone:
			if fileIdx != len(m.Files) {
				return fmt.Errorf("repl: stream ended after %d of %d files", fileIdx, len(m.Files))
			}
			return f.openStore(m)
		default:
			return fmt.Errorf("repl: unexpected frame type %d during bootstrap", typ)
		}
	}
}

// wipeAndRetry clears the data directory and returns a retryable error, so
// the next session re-bootstraps from nothing.
func (f *Follower) wipeAndRetry(format string, args ...any) error {
	if err := wipeDir(f.cfg.Dir, false); err != nil {
		return fatalf("repl: wiping %s: %v", f.cfg.Dir, err)
	}
	return fmt.Errorf("repl: "+format+"; wiped %s for a full re-bootstrap", append(args, f.cfg.Dir)...)
}

// receiveFile applies one shipped partition: tmp + CRC verify + fsync +
// rename + dir fsync, the same commit protocol a local seal uses.
func (f *Follower) receiveFile(next func() (byte, []byte, error), dir string, fi FileInfo) error {
	if fi.Name != filepath.Base(fi.Name) || !partFileRE.MatchString(fi.Name) {
		return fmt.Errorf("repl: refusing shipped file name %q", fi.Name)
	}
	final := filepath.Join(dir, fi.Name)
	tmp := final + ".tmp"
	w, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fatalf("repl: %v", err)
	}
	defer func() {
		if w != nil {
			w.Close()
			os.Remove(tmp)
		}
	}()
	var size int64
	crc := crc32.New(crcTable)
	for {
		typ, payload, err := next()
		if err != nil {
			return err
		}
		switch typ {
		case frameFileChunk:
			if _, err := w.Write(payload); err != nil {
				return fatalf("repl: writing %s: %v", tmp, err)
			}
			crc.Write(payload)
			size += int64(len(payload))
		case frameFileEnd:
			var end fileEndMsg
			if err := json.Unmarshal(payload, &end); err != nil {
				return fmt.Errorf("repl: file end: %w", err)
			}
			if size != fi.Size || crc.Sum32() != end.CRC {
				return fmt.Errorf("repl: shipped file %s arrived torn (%d bytes, crc %08x)", fi.Name, size, crc.Sum32())
			}
			if err := w.Sync(); err != nil {
				return fatalf("repl: %v", err)
			}
			if err := w.Close(); err != nil {
				w = nil
				return fatalf("repl: %v", err)
			}
			w = nil
			if err := os.Rename(tmp, final); err != nil {
				return fatalf("repl: %v", err)
			}
			if err := wal.SyncDir(dir); err != nil {
				return fatalf("repl: %v", err)
			}
			f.cfg.logf("repl: follower %s: received %s (%d bytes)", f.cfg.Self, fi.Name, size)
			return nil
		default:
			return fmt.Errorf("repl: unexpected frame type %d inside file %s", typ, fi.Name)
		}
	}
}

// openStore opens the local store over the bootstrapped directory and
// verifies it recovered to exactly the manifest's start position.
func (f *Follower) openStore(m Manifest) error {
	ap, err := f.cfg.Open(m.StartSeq, m.StartOff)
	if err != nil {
		return fatalf("repl: opening bootstrapped store: %v", err)
	}
	seq, off := ap.Position()
	if seq != m.StartSeq || off != m.StartOff {
		return fatalf("repl: bootstrapped store recovered to (%d, %d), manifest starts at (%d, %d)", seq, off, m.StartSeq, m.StartOff)
	}
	f.mu.Lock()
	f.applier = ap
	f.opened = true
	f.mu.Unlock()
	close(f.openedCh)
	f.cfg.logf("repl: follower %s: store open at (seal %d, off %d)", f.cfg.Self, seq, off)
	return nil
}

// tail applies the live stream: WAL frames through the ingest lock, seal
// markers as local seals, heartbeats as position updates. Every path acks.
func (f *Follower) tail(next func() (byte, []byte, error)) (applied bool, err error) {
	ap := f.currentApplier()
	var sessFrames, sessBytes, unacked int64
	for {
		typ, payload, err := next()
		if err != nil {
			return applied, err
		}
		switch typ {
		case frameWAL:
			recs, err := wal.DecodeFrame(payload)
			if err != nil {
				return applied, fmt.Errorf("repl: stream WAL frame: %w", err)
			}
			_, before := ap.Position()
			if err := ap.Apply(recs); err != nil {
				return applied, fatalf("repl: applying replicated batch: %v", err)
			}
			if _, after := ap.Position(); after-before != int64(len(payload)) {
				return applied, fatalf("repl: applied frame re-encoded to %d bytes, primary wrote %d — WAL encoding diverged", after-before, len(payload))
			}
			applied = true
			sessFrames++
			sessBytes += int64(len(payload))
			unacked += int64(len(payload))
			f.mu.Lock()
			f.state.Frames++
			f.state.Bytes += int64(len(payload))
			f.mu.Unlock()
			f.touch()
			if unacked >= f.cfg.ackEvery() {
				f.sendAck(sessFrames, sessBytes)
				unacked = 0
			}
		case frameSeal:
			var msg sealMsg
			if err := json.Unmarshal(payload, &msg); err != nil {
				return applied, fmt.Errorf("repl: seal marker: %w", err)
			}
			if err := ap.Seal(msg.Seq); err != nil {
				return applied, fatalf("repl: sealing at %d: %v", msg.Seq, err)
			}
			if seq, _ := ap.Position(); seq != msg.Seq {
				return applied, fatalf("repl: seal produced sequence %d, primary sealed %d", seq, msg.Seq)
			}
			applied = true
			f.touch()
			f.sendAck(sessFrames, sessBytes)
			unacked = 0
		case frameHeartbeat:
			var hb heartbeatMsg
			if err := json.Unmarshal(payload, &hb); err != nil {
				return applied, fmt.Errorf("repl: heartbeat: %w", err)
			}
			f.mu.Lock()
			if hb.Seq > f.primarySeq || (hb.Seq == f.primarySeq && hb.Off > f.primaryOff) {
				f.primarySeq, f.primaryOff = hb.Seq, hb.Off
			}
			f.mu.Unlock()
			f.touch()
			f.sendAck(sessFrames, sessBytes)
			unacked = 0
		default:
			return applied, fmt.Errorf("repl: unexpected frame type %d on the live stream", typ)
		}
		f.updateSynced()
	}
}

// updateSynced recomputes the caught-up bit: our position has reached the
// primary's last-reported one.
func (f *Follower) updateSynced() {
	ap := f.currentApplier()
	if ap == nil {
		return
	}
	seq, off := ap.Position()
	f.mu.Lock()
	f.state.Synced = seq > f.primarySeq || (seq == f.primarySeq && off >= f.primaryOff)
	f.mu.Unlock()
}

// sendAck posts the follower's progress out of band; failures are logged
// and absorbed (a stalled window tears the session down on the primary).
func (f *Follower) sendAck(frames, bytesApplied int64) {
	ap := f.currentApplier()
	if ap == nil {
		return
	}
	seq, off := ap.Position()
	f.mu.Lock()
	a := Ack{
		Follower: f.cfg.Self,
		Session:  f.sessID,
		Frames:   frames,
		Bytes:    bytesApplied,
		SealSeq:  seq,
		WALOff:   off,
	}
	addr := f.sessAddr
	f.mu.Unlock()
	body, err := json.Marshal(a)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+PathReplicateAck, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client().Do(req)
	if err != nil {
		f.cfg.logf("repl: follower %s: ack failed: %v", f.cfg.Self, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
}

// partFileRE recognizes sealed partition files (plain and compacted range
// names); walFileRE and snapFileRE the WAL segments and flat snapshots.
var (
	partFileRE = regexp.MustCompile(`^part-(\d{8})(?:-(\d{8}))?\.tkp$`)
	walFileRE  = regexp.MustCompile(`^wal-(\d{8})\.log$`)
	snapFileRE = regexp.MustCompile(`^snapshot-(\d{8})\.bin$`)
)

// scanDir derives a bootstrap handshake from the data directory's contents:
// the newest sealed partition sequence and the newest WAL segment's valid
// prefix. A missing directory is created; unreadable state simply reports a
// smaller position (the primary ships more).
func scanDir(dir string) (Handshake, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Handshake{}, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Handshake{}, err
	}
	var h Handshake
	var walSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case partFileRE.MatchString(name):
			m := partFileRE.FindStringSubmatch(name)
			hi := parseSeqStr(m[1])
			if m[2] != "" {
				hi = parseSeqStr(m[2])
			}
			if hi > h.SealSeq {
				h.SealSeq = hi
			}
		case walFileRE.MatchString(name):
			walSeqs = append(walSeqs, parseSeqStr(walFileRE.FindStringSubmatch(name)[1]))
		}
	}
	h.WALSeq = h.SealSeq
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })
	if n := len(walSeqs); n > 0 && walSeqs[n-1] >= h.SealSeq {
		seq := walSeqs[n-1]
		off, crc, _, err := wal.ScanSegment(filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq)))
		if err == nil && off > wal.SegmentHeaderLen {
			h.WALSeq, h.WALOff, h.WALCRC = seq, off, crc
		}
	}
	return h, nil
}

func parseSeqStr(s string) uint64 {
	var n uint64
	for _, c := range s {
		n = n*10 + uint64(c-'0')
	}
	return n
}

// wipeDir deletes the store files from the data directory — only the WAL
// segments (walOnly) or everything (partitions, segments, snapshots, temp
// leftovers). Partitions go newest-first so a crash mid-wipe leaves a
// contiguous prefix the next handshake can build on. Unknown files (LOCK)
// are left alone.
func wipeDir(dir string, walOnly bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type doomed struct {
		name string
		hi   uint64
	}
	var parts []doomed
	for _, e := range entries {
		name := e.Name()
		switch {
		case walFileRE.MatchString(name):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		case walOnly:
		case partFileRE.MatchString(name):
			m := partFileRE.FindStringSubmatch(name)
			hi := parseSeqStr(m[1])
			if m[2] != "" {
				hi = parseSeqStr(m[2])
			}
			parts = append(parts, doomed{name: name, hi: hi})
		case snapFileRE.MatchString(name) || filepath.Ext(name) == ".tmp":
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].hi > parts[j].hi })
	for _, p := range parts {
		if err := os.Remove(filepath.Join(dir, p.name)); err != nil {
			return err
		}
	}
	return wal.SyncDir(dir)
}
