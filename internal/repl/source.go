package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tkplq/internal/parts"
	"tkplq/internal/wal"
)

// SourceConfig parametrizes a Source.
type SourceConfig struct {
	// Store is the primary's partitioned store. Required.
	Store *parts.Store
	// HeartbeatEvery is the idle heartbeat cadence (default 1s).
	HeartbeatEvery time.Duration
	// WindowBytes bounds the unacked stream: once sent-minus-acked WAL
	// bytes exceed it, the source pauses until the follower acks (default
	// 4 MiB).
	WindowBytes int64
	// AckTimeout drops a session that makes no ack progress while the
	// window is full (default 30s).
	AckTimeout time.Duration
	// Logf receives session lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
}

func (c SourceConfig) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery <= 0 {
		return time.Second
	}
	return c.HeartbeatEvery
}

func (c SourceConfig) windowBytes() int64 {
	if c.WindowBytes <= 0 {
		return 4 << 20
	}
	return c.WindowBytes
}

func (c SourceConfig) ackTimeout() time.Duration {
	if c.AckTimeout <= 0 {
		return 30 * time.Second
	}
	return c.AckTimeout
}

func (c SourceConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Source is the primary side of replication: it serves one streaming
// session per connected follower over the store's committed log.
type Source struct {
	cfg SourceConfig

	nextSession atomic.Int64

	mu       sync.Mutex
	sessions map[string]*session
	draining bool
}

// session is one follower's live stream state, shared between the Serve
// goroutine (sender) and Ack (receiver).
type session struct {
	id       int64
	follower string
	started  time.Time
	canceled chan struct{} // closed when a re-dial supersedes this session

	mu         sync.Mutex
	sentFrames int64
	sentBytes  int64
	ackFrames  int64
	ackBytes   int64
	sealSeq    uint64
	walOff     int64
	lastAck    time.Time
	ackCh      chan struct{} // 1-buffered poke on every ack
}

// FollowerStatus is one follower's replication health for /v1/stats.
type FollowerStatus struct {
	ID         string
	Age        time.Duration
	SentFrames int64
	SentBytes  int64
	AckFrames  int64
	AckBytes   int64
	LagFrames  int64
	LagBytes   int64
	SealSeq    uint64
	WALOff     int64
	LastAckAge time.Duration
}

// NewSource builds a Source over the primary's store.
func NewSource(cfg SourceConfig) *Source {
	return &Source{cfg: cfg, sessions: make(map[string]*session)}
}

// Status returns the connected followers' replication state, sorted by id.
func (s *Source) Status() []FollowerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	out := make([]FollowerStatus, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sess.mu.Lock()
		st := FollowerStatus{
			ID:         sess.follower,
			Age:        now.Sub(sess.started),
			SentFrames: sess.sentFrames,
			SentBytes:  sess.sentBytes,
			AckFrames:  sess.ackFrames,
			AckBytes:   sess.ackBytes,
			LagFrames:  sess.sentFrames - sess.ackFrames,
			LagBytes:   sess.sentBytes - sess.ackBytes,
			SealSeq:    sess.sealSeq,
			WALOff:     sess.walOff,
			LastAckAge: now.Sub(sess.lastAck),
		}
		sess.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ack records a follower's progress report. Acks for stale sessions are
// dropped silently (the follower re-dialed meanwhile).
func (s *Source) Ack(a Ack) {
	s.mu.Lock()
	sess := s.sessions[a.Follower]
	s.mu.Unlock()
	if sess == nil || sess.id != a.Session {
		return
	}
	sess.mu.Lock()
	if a.Frames > sess.ackFrames {
		sess.ackFrames = a.Frames
	}
	if a.Bytes > sess.ackBytes {
		sess.ackBytes = a.Bytes
	}
	sess.sealSeq = a.SealSeq
	sess.walOff = a.WALOff
	sess.lastAck = time.Now()
	sess.mu.Unlock()
	select {
	case sess.ackCh <- struct{}{}:
	default:
	}
}

// register opens a session for the follower, superseding (and waking) any
// previous one under the same identity. On a draining source the session is
// born canceled, so the stream ends at the first tail iteration instead of
// holding graceful shutdown open.
func (s *Source) register(follower string) *session {
	sess := &session{
		id:       s.nextSession.Add(1),
		follower: follower,
		started:  time.Now(),
		lastAck:  time.Now(),
		canceled: make(chan struct{}),
		ackCh:    make(chan struct{}, 1),
	}
	s.mu.Lock()
	if old := s.sessions[follower]; old != nil {
		close(old.canceled)
	}
	if s.draining {
		close(sess.canceled)
	}
	s.sessions[follower] = sess
	s.mu.Unlock()
	return sess
}

// Shutdown cancels every live replication session (and pre-cancels future
// ones): the long-lived stream responses finish, so the server's graceful
// shutdown is not held open until its drain budget expires. Followers treat
// the drop like any link failure and reconnect with backoff.
func (s *Source) Shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	for _, sess := range s.sessions {
		select {
		case <-sess.canceled:
		default:
			close(sess.canceled)
		}
	}
}

func (s *Source) unregister(sess *session) {
	s.mu.Lock()
	if s.sessions[sess.follower] == sess {
		delete(s.sessions, sess.follower)
	}
	s.mu.Unlock()
}

// Serve runs one replication session: it decides the manifest from the
// follower's handshake, ships missing partition files (bootstrap only),
// then tails the committed WAL until the context ends, the session is
// superseded, or the follower stops acking. Errors returned before the
// first write are mappable to an HTTP status (ErrBootstrapRequired → 409);
// later errors just end the stream. flush must push buffered response
// bytes to the network (streaming responses are useless unflushed).
func (s *Source) Serve(ctx context.Context, w io.Writer, flush func(), h Handshake) error {
	if s.cfg.Store == nil {
		return errors.New("repl: source has no store")
	}
	if h.Follower == "" {
		return errors.New("repl: handshake names no follower")
	}
	if err := s.cfg.Store.Failed(); err != nil {
		return fmt.Errorf("repl: primary store is poisoned: %w", err)
	}

	view, seq, off := s.cfg.Store.ReplicationView()
	m, files, err := s.decide(h, view, seq, off)
	if err != nil {
		return err
	}

	sess := s.register(h.Follower)
	m.Session = sess.id
	defer s.unregister(sess)
	s.cfg.logf("repl: session %d: follower %s at (seal %d, off %d, live %v) → start (%d, %d), %d files, full_resync=%v reset_wal=%v",
		sess.id, h.Follower, h.SealSeq, h.WALOff, h.Live, m.StartSeq, m.StartOff, len(files), m.FullResync, m.ResetWAL)

	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := writeFrame(w, frameManifest, payload); err != nil {
		return err
	}
	if !h.Live {
		for _, p := range files {
			if err := shipFile(w, p); err != nil {
				return err
			}
			flush()
		}
		if err := writeFrame(w, frameFilesDone, nil); err != nil {
			return err
		}
	}
	flush()
	return s.tail(ctx, w, flush, sess, m.StartSeq, m.StartOff)
}

// decide turns the follower's handshake plus the primary's consistent
// (sealed set, WAL position) view into a manifest.
//
// Bootstrap (store not open yet): ship every partition file whose range the
// follower lacks (hi > follower's seal). If any shipped file straddles the
// follower's boundary (lo ≤ seal < hi — a compaction merged across it), or
// the follower is AHEAD of the primary (divergence: it outlived a previous
// primary), the only byte-exact baseline is everything: full resync. The
// WAL tail then starts at the primary's active segment; the follower's own
// segment survives only when it is a verified byte prefix of the primary's
// active segment (same seq, matching prefix CRC).
//
// Live reconnect: files cannot be applied, so the follower's position must
// be a verified prefix of history the primary still has on disk (WAL
// retention); anything else is ErrBootstrapRequired.
func (s *Source) decide(h Handshake, view []*parts.Partition, seq uint64, off int64) (Manifest, []*parts.Partition, error) {
	log := s.cfg.Store.Log()
	if h.Live {
		if h.WALSeq > seq || h.SealSeq > seq {
			return Manifest{}, nil, fmt.Errorf("%w: follower at seal %d is ahead of primary at %d", ErrBootstrapRequired, h.SealSeq, seq)
		}
		segPath := log.SegmentPath(h.WALSeq)
		if h.WALOff < wal.SegmentHeaderLen {
			return Manifest{}, nil, fmt.Errorf("%w: follower reports no usable segment", ErrBootstrapRequired)
		}
		crc, err := wal.PrefixCRC(segPath, h.WALOff)
		if err != nil {
			return Manifest{}, nil, fmt.Errorf("%w: segment %d no longer on the primary (%v)", ErrBootstrapRequired, h.WALSeq, err)
		}
		if h.WALSeq == seq && h.WALOff > off {
			return Manifest{}, nil, fmt.Errorf("%w: follower offset %d is past the primary's committed %d", ErrBootstrapRequired, h.WALOff, off)
		}
		if crc != h.WALCRC {
			return Manifest{}, nil, fmt.Errorf("%w: segment %d prefix diverged", ErrBootstrapRequired, h.WALSeq)
		}
		return Manifest{StartSeq: h.WALSeq, StartOff: h.WALOff}, nil, nil
	}

	full := h.SealSeq > seq
	var files []*parts.Partition
	if !full {
		for _, p := range view {
			lo, hi := p.SeqRange()
			if hi <= h.SealSeq {
				continue
			}
			if lo <= h.SealSeq {
				// A compaction on the primary merged across the follower's
				// seal boundary; no subset of files is byte-exact.
				full = true
				break
			}
			files = append(files, p)
		}
	}
	if full {
		files = append([]*parts.Partition(nil), view...)
	}
	m := Manifest{FullResync: full, StartSeq: seq, StartOff: wal.SegmentHeaderLen}
	if !full && len(files) == 0 && h.WALSeq == seq && h.WALOff >= wal.SegmentHeaderLen && h.WALOff <= off {
		// Same seal, no missing files: resume mid-segment if the follower's
		// log is a byte-identical prefix of ours.
		if crc, err := wal.PrefixCRC(log.SegmentPath(seq), h.WALOff); err == nil && crc == h.WALCRC {
			m.StartOff = h.WALOff
		} else {
			m.ResetWAL = true
		}
	} else {
		m.ResetWAL = true
	}
	for _, p := range files {
		lo, hi := p.SeqRange()
		m.Files = append(m.Files, FileInfo{
			Name:  filepath.Base(p.Path()),
			Size:  p.SizeBytes(),
			SeqLo: lo,
			SeqHi: hi,
		})
	}
	return m, files, nil
}

// shipFile streams one partition image: Begin, 1 MiB chunks, End(CRC). The
// Retain pins the mapping so a concurrent compaction deleting the file
// cannot pull the bytes out from under the copy.
func shipFile(w io.Writer, p *parts.Partition) error {
	p.Retain()
	defer p.Release()
	data := p.Bytes()
	lo, hi := p.SeqRange()
	begin, err := json.Marshal(FileInfo{Name: filepath.Base(p.Path()), Size: int64(len(data)), SeqLo: lo, SeqHi: hi})
	if err != nil {
		return err
	}
	if err := writeFrame(w, frameFileBegin, begin); err != nil {
		return err
	}
	for off := 0; off < len(data); off += fileChunkLen {
		end := off + fileChunkLen
		if end > len(data) {
			end = len(data)
		}
		if err := writeFrame(w, frameFileChunk, data[off:end]); err != nil {
			return err
		}
	}
	endMsg, err := json.Marshal(fileEndMsg{CRC: crc32.Checksum(data, crcTable)})
	if err != nil {
		return err
	}
	return writeFrame(w, frameFileEnd, endMsg)
}

// tail streams the committed WAL from (cur, curOff) forward: frames up to
// the committed position, a Seal marker at every rotation boundary, and
// heartbeats while idle. It never reads past wal.Position — bytes beyond it
// may be a frame mid-write.
func (s *Source) tail(ctx context.Context, w io.Writer, flush func(), sess *session, cur uint64, curOff int64) error {
	log := s.cfg.Store.Log()
	watch, cancelWatch := log.Watch()
	defer cancelWatch()

	f, err := os.Open(log.SegmentPath(cur))
	if err != nil {
		return fmt.Errorf("repl: session %d: %w", sess.id, err)
	}
	defer func() { f.Close() }()

	hb := time.NewTicker(s.cfg.heartbeatEvery())
	defer hb.Stop()
	var hdr [8]byte
	buf := make([]byte, 64<<10)

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-sess.canceled:
			return fmt.Errorf("repl: session %d superseded by a newer dial from %s", sess.id, sess.follower)
		default:
		}
		if err := s.cfg.Store.Failed(); err != nil {
			return fmt.Errorf("repl: primary store poisoned mid-session: %w", err)
		}

		seq, off := log.Position()
		rotated := seq > cur
		target := off
		if rotated {
			// The segment is final: its whole length is committed.
			fi, err := f.Stat()
			if err != nil {
				return err
			}
			target = fi.Size()
		}

		if curOff < target {
			sent := false
			for curOff < target {
				if _, err := f.ReadAt(hdr[:], curOff); err != nil {
					return fmt.Errorf("repl: reading frame header at %d: %w", curOff, err)
				}
				plen := int64(binary32(hdr[:4]))
				total := int64(len(hdr)) + plen
				if plen > maxStreamPayload || curOff+total > target {
					return fmt.Errorf("repl: segment %d has an invalid frame at offset %d", cur, curOff)
				}
				if int64(cap(buf)) < total {
					buf = make([]byte, total)
				}
				frame := buf[:total]
				if _, err := f.ReadAt(frame, curOff); err != nil {
					return fmt.Errorf("repl: reading frame at %d: %w", curOff, err)
				}
				if _, err := wal.NextFrame(frame); err != nil {
					return fmt.Errorf("repl: segment %d frame at offset %d: %w", cur, curOff, err)
				}
				if err := writeFrame(w, frameWAL, frame); err != nil {
					return err
				}
				curOff += total
				sent = true
				sess.mu.Lock()
				sess.sentFrames++
				sess.sentBytes += total
				sess.mu.Unlock()
				if err := s.waitWindow(ctx, sess); err != nil {
					return err
				}
			}
			if sent {
				flush()
			}
			continue
		}

		if rotated {
			// Fully drained: everything in segment cur is sealed into
			// partition cur+1 on the primary; tell the follower to seal its
			// head now, producing the byte-identical partition, then move to
			// the next segment.
			payload, err := json.Marshal(sealMsg{Seq: cur + 1})
			if err != nil {
				return err
			}
			if err := writeFrame(w, frameSeal, payload); err != nil {
				return err
			}
			flush()
			f.Close()
			cur++
			curOff = wal.SegmentHeaderLen
			f, err = os.Open(log.SegmentPath(cur))
			if err != nil {
				// The segment already left the retention window (possible
				// only if the follower lagged several rotations); it will
				// re-dial and re-bootstrap.
				return fmt.Errorf("repl: session %d fell behind retention: %w", sess.id, err)
			}
			continue
		}

		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-sess.canceled:
			return fmt.Errorf("repl: session %d superseded by a newer dial from %s", sess.id, sess.follower)
		case <-watch:
		case <-hb.C:
			payload, err := json.Marshal(heartbeatMsg{Seq: seq, Off: off})
			if err != nil {
				return err
			}
			if err := writeFrame(w, frameHeartbeat, payload); err != nil {
				return err
			}
			flush()
		}
	}
}

// waitWindow blocks while the unacked window is full, timing out if the
// follower makes no ack progress at all.
func (s *Source) waitWindow(ctx context.Context, sess *session) error {
	window := s.cfg.windowBytes()
	var lastAcked int64 = -1
	deadline := time.Now().Add(s.cfg.ackTimeout())
	for {
		sess.mu.Lock()
		acked := sess.ackBytes
		over := sess.sentBytes-acked > window
		sess.mu.Unlock()
		if !over {
			return nil
		}
		if acked != lastAcked {
			lastAcked = acked
			deadline = time.Now().Add(s.cfg.ackTimeout())
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return fmt.Errorf("repl: follower %s stopped acking with the window full (%d unacked bytes)", sess.follower, sess.sentBytes-acked)
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-sess.canceled:
			t.Stop()
			return fmt.Errorf("repl: session %d superseded", sess.id)
		case <-sess.ackCh:
			t.Stop()
		case <-t.C:
		}
	}
}

func binary32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
