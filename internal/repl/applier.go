package repl

import (
	"fmt"

	"tkplq"
	"tkplq/internal/iupt"
	"tkplq/internal/parts"
)

// SystemApplier adapts a System over a partitioned store into the
// follower's Applier: replicated batches go through System.Ingest — the
// same validation, ingest lock, write-ahead append and live-monitor
// notification a local ingest gets, which is what makes the follower's WAL
// byte-identical and its subscriptions live — and seal markers through
// System.Snapshot, which holds the ingest lock across the seal exactly as
// on the primary.
type SystemApplier struct {
	sys   *tkplq.System
	store *parts.Store
}

// NewSystemApplier builds the Applier for a follower daemon's System.
func NewSystemApplier(sys *tkplq.System, store *parts.Store) *SystemApplier {
	return &SystemApplier{sys: sys, store: store}
}

// Apply ingests one replicated batch.
func (a *SystemApplier) Apply(recs []iupt.Record) error {
	return a.sys.Ingest(recs)
}

// Seal seals the mutable head; the resulting partition sequence must be seq
// (the caller verifies via Position).
func (a *SystemApplier) Seal(seq uint64) error {
	if err := a.sys.Snapshot(); err != nil {
		return fmt.Errorf("seal %d: %w", seq, err)
	}
	return nil
}

// Position reports the store's committed WAL position.
func (a *SystemApplier) Position() (uint64, int64) {
	return a.store.Log().Position()
}

// SegmentPath resolves a WAL segment path in the store's directory.
func (a *SystemApplier) SegmentPath(seq uint64) string {
	return a.store.Log().SegmentPath(seq)
}
