// Package repl implements per-shard primary→follower replication for the
// partitioned store: a follower bootstraps by fetching the sealed partition
// files it lacks byte-for-byte (partition identity = never-reused sequence
// ranges, so a file's name implies its bytes), then tails the primary's
// committed WAL over the same long-lived HTTP response, re-applying each
// CRC32C frame through its own System's ingest lock. Because the WAL batch
// encoding is deterministic and seals are driven by explicit stream markers,
// a caught-up follower's table — rankings AND float64 flows — and its data
// directory are bit-identical to the primary's.
//
// One replication session is one `POST /v2/replicate` exchange:
//
//	follower                                  primary
//	--------                                  -------
//	Handshake{seal seq, wal off, crc}  ───▶
//	                                   ◀───  Manifest{files?, resync?, start}
//	                                   ◀───  FileBegin/FileChunk*/FileEnd ...
//	                                   ◀───  FilesDone
//	                                   ◀───  WALFrame* / Seal / Heartbeat ...
//	Ack{position} (POST /v2/replicate/ack, out of band, bounded window)
//
// Replication is asynchronous: an acked ingest the primary has not yet
// streamed is lost if the primary dies and a follower is promoted. What the
// protocol does guarantee is convergence without divergence — a rejoining
// node whose history conflicts with the new primary's is detected by the
// handshake (prefix CRC / seal-sequence comparison) and re-bootstrapped from
// scratch, never merged.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Stream frame types. Every frame on the wire is
// [type:1][len:uint32 LE][crc32c(payload):uint32 LE][payload].
const (
	frameManifest  byte = 1
	frameFileBegin byte = 2
	frameFileChunk byte = 3
	frameFileEnd   byte = 4
	frameFilesDone byte = 5
	frameWAL       byte = 6 // payload = one on-disk WAL frame, byte-for-byte
	frameSeal      byte = 7
	frameHeartbeat byte = 8
)

const (
	streamHdrLen = 9
	// maxStreamPayload bounds one stream frame: a WAL frame (64 MiB payload
	// bound + its own header) is the largest legitimate payload.
	maxStreamPayload = 1<<26 + 1024
	// fileChunkLen is the shipping granularity of partition files.
	fileChunkLen = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBootstrapRequired reports that the primary cannot serve the follower's
// position over the live stream — its history diverged or fell out of the
// primary's WAL retention window — and the follower must restart to
// re-bootstrap (file shipping only happens before the follower's store is
// open). The server maps it to HTTP 409.
var ErrBootstrapRequired = errors.New("repl: follower position cannot be served live; re-bootstrap required")

// Handshake is the follower's request body: its durable position. WALCRC is
// the CRC32C of the segment file's first WALOff bytes, letting the primary
// verify the follower's log is a byte-identical prefix of its own before
// resuming the stream mid-segment.
type Handshake struct {
	// Follower identifies the session (the member's advertised address);
	// a re-dial under the same identity supersedes the previous session.
	Follower string `json:"follower"`
	// SealSeq is the newest sealed partition sequence in the follower's
	// data directory.
	SealSeq uint64 `json:"seal_seq"`
	// WALSeq/WALOff/WALCRC describe the follower's newest WAL segment:
	// its sequence, valid byte length (header included; 0 = no segment)
	// and prefix checksum.
	WALSeq uint64 `json:"wal_seq"`
	WALOff int64  `json:"wal_off"`
	WALCRC uint32 `json:"wal_crc"`
	// Live marks a reconnect from an already-open store: partition files
	// cannot be applied, so the primary must either resume from retained
	// WAL segments or refuse with 409.
	Live bool `json:"live"`
}

// Manifest is the first stream frame: the primary's decision about how the
// follower gets from its reported position to the live tail.
type Manifest struct {
	// Session identifies this stream in acks.
	Session int64 `json:"session"`
	// FullResync tells the follower to wipe its data directory first: its
	// history diverged from the primary's (e.g. an old primary rejoining
	// after a failover that promoted a sibling).
	FullResync bool `json:"full_resync,omitempty"`
	// ResetWAL tells the follower to delete its WAL segments before
	// opening: the stream restarts them from StartSeq's header.
	ResetWAL bool `json:"reset_wal,omitempty"`
	// Files lists the partition files shipped before the WAL tail.
	Files []FileInfo `json:"files,omitempty"`
	// StartSeq/StartOff is where the WAL tail begins: the follower's store
	// must be at exactly this position when the first WALFrame applies.
	StartSeq uint64 `json:"start_seq"`
	StartOff int64  `json:"start_off"`
}

// FileInfo describes one shipped partition file.
type FileInfo struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	SeqLo uint64 `json:"seq_lo"`
	SeqHi uint64 `json:"seq_hi"`
}

// fileEndMsg closes one shipped file: the CRC32C of its whole content.
type fileEndMsg struct {
	CRC uint32 `json:"crc"`
}

// sealMsg instructs the follower to seal its head now; the resulting
// partition sequence must equal Seq (the segment the primary just finished
// streaming plus one).
type sealMsg struct {
	Seq uint64 `json:"seq"`
}

// heartbeatMsg carries the primary's committed position while the stream is
// idle; the follower derives its caught-up bit (and the router's staleness
// bound) from it.
type heartbeatMsg struct {
	Seq uint64 `json:"seq"`
	Off int64  `json:"off"`
}

// Ack is the follower's out-of-band progress report (POST
// /v2/replicate/ack): session-relative applied counters (exact lag
// accounting) plus its absolute durable position (failover choice).
type Ack struct {
	Follower string `json:"follower"`
	Session  int64  `json:"session"`
	// Frames/Bytes count WAL frames applied within this session.
	Frames int64 `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// SealSeq/WALOff is the follower's absolute durable position.
	SealSeq uint64 `json:"seal_seq"`
	WALOff  int64  `json:"wal_off"`
}

// writeFrame emits one stream frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [streamHdrLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads and CRC-verifies one stream frame.
func readFrame(br *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [streamHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	plen := binary.LittleEndian.Uint32(hdr[1:])
	crc := binary.LittleEndian.Uint32(hdr[5:])
	if plen > maxStreamPayload {
		return 0, nil, fmt.Errorf("repl: stream frame of %d bytes exceeds the %d-byte bound", plen, maxStreamPayload)
	}
	payload = make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, errors.New("repl: stream frame CRC mismatch")
	}
	return typ, payload, nil
}
