package repl

// Crash-point fault-injection sweep over the replication protocol. Three
// killers, each swept across every step of a clean run:
//
//   - a primary-side write fault at the k-th stream write (odd k also ships
//     a torn half-frame first), for every k of a clean session;
//   - a follower crash (context canceled, process state dropped) at the k-th
//     received frame, rejoining as a brand-new Follower over the same
//     directory;
//   - a primary kill mid-window: the serving process dies, the store is
//     reopened (WAL recovery) behind a second address, and the follower
//     rotates to it over a live handshake.
//
// After every injected fault the follower must converge to a state
// bit-identical to the primary's — same durable position, byte-equal
// partition files, byte-equal WAL prefix, and an identical answer battery
// (rankings AND float64 flows) — with no assertion weakened by where the
// fault landed. Run under -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tkplq"
	"tkplq/internal/retry"
)

// replTestData mirrors the root package's durable test dataset: small enough
// to sweep dozens of crash points, rich enough that answers exercise real
// float accumulation.
func replTestData(t testing.TB) (*tkplq.Building, *tkplq.Table) {
	t.Helper()
	b, err := tkplq.GenerateBuilding(tkplq.DefaultBuildingConfig())
	if err != nil {
		t.Fatal(err)
	}
	trajs, err := tkplq.SimulateMovement(b, tkplq.MovementConfig{
		Objects: 6, Duration: 600, MaxSpeed: 1.0,
		MinDwell: 60, MaxDwell: 240,
		MinLifespan: 300, MaxLifespan: 600,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := tkplq.GenerateIUPT(b, trajs, tkplq.PositioningConfig{
		MaxPeriod: 3, MSS: 4, ErrorRadius: 5, Gamma: 0.2, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, table
}

// replBatches builds ten valid 3-record batches past the generated span.
func replBatches(numPLocs int) [][]tkplq.Record {
	batches := make([][]tkplq.Record, 10)
	for i := range batches {
		recs := make([]tkplq.Record, 3)
		for j := range recs {
			p1 := tkplq.PLocID((i*3 + j) % numPLocs)
			p2 := tkplq.PLocID((i*3 + j + 1) % numPLocs)
			recs[j] = tkplq.Record{
				OID: tkplq.ObjectID(100 + i),
				T:   tkplq.Time(610 + int64(i)*5 + int64(j)),
				Samples: tkplq.SampleSet{
					{Loc: p1, Prob: 0.6},
					{Loc: p2, Prob: 0.4},
				},
			}
		}
		batches[i] = recs
	}
	return batches
}

// battery evaluates the determinism battery (all three TkPLQ algorithms,
// density, one flow) on a system.
func battery(t testing.TB, sys *tkplq.System) []*tkplq.Response {
	t.Helper()
	queries := []tkplq.Query{
		{Kind: tkplq.KindTopK, Algorithm: tkplq.BestFirst, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindTopK, Algorithm: tkplq.NestedLoop, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindTopK, Algorithm: tkplq.Naive, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindDensity, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindFlow, Ts: 0, Te: 700, SLocs: sys.AllSLocations()[:1]},
	}
	out := make([]*tkplq.Response, len(queries))
	for i, q := range queries {
		resp, err := sys.Do(context.Background(), q)
		if err != nil {
			t.Fatalf("battery query %d: %v", i, err)
		}
		out[i] = resp
	}
	return out
}

// injector fails the n-th Write call observed across a primary's replication
// responses; odd faults also leak a torn half-write first, so the follower
// sees a corrupt frame rather than a clean EOF. Once fired it passes
// everything through — the reconnect must converge.
type injector struct {
	mu     sync.Mutex
	armed  bool
	failAt int
	torn   bool
	writes int
	fired  bool
}

func (in *injector) arm(failAt int, torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed, in.failAt, in.torn, in.writes, in.fired = true, failAt, torn, 0, false
}

func (in *injector) observedWrites() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.writes
}

func (in *injector) didFire() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

type faultyWriter struct {
	in *injector
	w  io.Writer
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	fw.in.mu.Lock()
	n := fw.in.writes
	fw.in.writes++
	fire := fw.in.armed && !fw.in.fired && n == fw.in.failAt
	torn := fw.in.torn
	if fire {
		fw.in.fired = true
	}
	fw.in.mu.Unlock()
	if fire {
		if torn && len(p) > 1 {
			fw.w.Write(p[:len(p)/2])
		}
		return 0, errors.New("injected write fault")
	}
	return fw.w.Write(p)
}

// testPrimary is a live primary: partitioned store, system, source, and an
// HTTP endpoint speaking the replication protocol through the injector.
type testPrimary struct {
	t     *testing.T
	dir   string
	b     *tkplq.Building
	sys   *tkplq.System
	store *tkplq.PartitionedStore
	src   *Source
	inj   *injector
	srv   *httptest.Server
	addr  string
}

// replMux builds the primary's handler the way the real server mounts it:
// pre-write Serve errors map ErrBootstrapRequired to 409, anything else to
// 503; acks are fire-and-forget.
func replMux(src *Source, inj *injector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathReplicate, func(w http.ResponseWriter, r *http.Request) {
		var h Handshake
		if err := decodeJSON(r.Body, &h); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fl := w.(http.Flusher)
		wrote := false
		var out io.Writer = writerFunc(func(p []byte) (int, error) {
			wrote = true
			return w.Write(p)
		})
		if inj != nil {
			out = &faultyWriter{in: inj, w: out}
		}
		err := src.Serve(r.Context(), out, func() { fl.Flush() }, h)
		if err != nil && !wrote {
			if errors.Is(err, ErrBootstrapRequired) {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	})
	mux.HandleFunc(PathReplicateAck, func(w http.ResponseWriter, r *http.Request) {
		var a Ack
		if err := decodeJSON(r.Body, &a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		src.Ack(a)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(io.LimitReader(r, 1<<20)).Decode(v)
}

// newTestPrimary builds a primary with nSealed+1 sealed partitions (the seed
// dataset seals as partition 1) and nLive further batches in the unsealed
// WAL tail, then serves it over HTTP. Batches nSealed+nLive onward stay
// unused, for ingest after a restart.
func newTestPrimary(t *testing.T, nSealed, nLive int) *testPrimary {
	t.Helper()
	p := &testPrimary{t: t, dir: t.TempDir(), inj: &injector{}}
	store, recovered, err := tkplq.OpenPartitioned(tkplq.PartitionedOptions{Dir: p.dir, KeepSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	p.store = store
	b, seed := replTestData(t)
	p.b = b
	sys, err := tkplq.NewSystem(b.Space, recovered, tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetPersister(store)
	p.sys = sys
	if err := sys.Ingest(seed.SortedRecords()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Snapshot(); err != nil {
		t.Fatal(err)
	}
	batches := replBatches(b.Space.NumPLocations())
	for i := 0; i < nSealed; i++ {
		if err := sys.Ingest(batches[i]); err != nil {
			t.Fatal(err)
		}
		if err := sys.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	for i := nSealed; i < nSealed+nLive; i++ {
		if err := sys.Ingest(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	p.src = NewSource(SourceConfig{Store: store, HeartbeatEvery: 50 * time.Millisecond, Logf: t.Logf})
	p.srv = httptest.NewServer(replMux(p.src, p.inj))
	t.Cleanup(p.srv.Close)
	p.addr = strings.TrimPrefix(p.srv.URL, "http://")
	return p
}

// testFollower wraps one Follower run over a directory, capturing the store
// and system its Open callback builds.
type testFollower struct {
	t      *testing.T
	dir    string
	fol    *Follower
	cancel context.CancelFunc
	runErr chan error

	mu    sync.Mutex
	sys   *tkplq.System
	store *tkplq.PartitionedStore
}

func (f *testFollower) system() *tkplq.System {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sys
}

func (f *testFollower) partStore() *tkplq.PartitionedStore {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.store
}

// stop cancels the run, waits it out, and closes the follower's store so the
// directory (and its flock) can be reused.
func (f *testFollower) stop() {
	f.cancel()
	<-f.runErr
	if st := f.partStore(); st != nil {
		st.Close()
	}
}

// startFollower boots a Follower over dir against the given primaries, with
// an optional per-frame hook (the crash injection point).
func startFollower(t *testing.T, space *tkplq.Space, dir string, primaries []string, hook func(typ byte, idx int) error) *testFollower {
	t.Helper()
	tf := &testFollower{t: t, dir: dir, runErr: make(chan error, 1)}
	cfg := FollowerConfig{
		Dir:       dir,
		Self:      "follower-1",
		Primaries: primaries,
		Retry:     retry.Policy{Base: 2 * time.Millisecond, Cap: 25 * time.Millisecond},
		// The stall watchdog must stay far above the heartbeat cadence but
		// low enough that a torn connection is noticed within the test.
		StallTimeout: 2 * time.Second,
		Logf:         t.Logf,
		hookFrame:    hook,
		Open: func(startSeq uint64, startOff int64) (Applier, error) {
			store, table, err := tkplq.OpenPartitioned(tkplq.PartitionedOptions{Dir: dir, KeepSegments: 8})
			if err != nil {
				return nil, err
			}
			sys, err := tkplq.NewSystem(space, table, tkplq.Options{})
			if err != nil {
				store.Close()
				return nil, err
			}
			sys.SetPersister(store)
			tf.mu.Lock()
			tf.sys, tf.store = sys, store
			tf.mu.Unlock()
			return NewSystemApplier(sys, store), nil
		},
	}
	fol, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tf.fol = fol
	ctx, cancel := context.WithCancel(context.Background())
	tf.cancel = cancel
	go func() { tf.runErr <- fol.Run(ctx) }()
	return tf
}

// waitConverged blocks until the follower's durable position equals the
// primary store's and its synced bit is set.
func waitConverged(t *testing.T, p *testPrimary, tf *testFollower) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-tf.runErr:
			t.Fatalf("follower run ended while waiting for convergence: %v", err)
		default:
		}
		pseq, poff := p.store.Log().Position()
		st := tf.fol.State()
		if st.Synced && st.WALSeq == pseq && st.WALOff == poff {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := tf.fol.State()
	pseq, poff := p.store.Log().Position()
	t.Fatalf("follower never converged: follower at (%d, %d) synced=%v, primary at (%d, %d)",
		st.WALSeq, st.WALOff, st.Synced, pseq, poff)
}

// assertBitIdentical is the convergence contract: positions equal, sealed
// partition files byte-equal, the WAL's committed prefix byte-equal, and the
// answer battery identical with == float comparison.
func assertBitIdentical(t *testing.T, label string, p *testPrimary, tf *testFollower, want []*tkplq.Response) {
	t.Helper()
	pseq, poff := p.store.Log().Position()
	fseq, foff := tf.partStore().Log().Position()
	if pseq != fseq || poff != foff {
		t.Fatalf("%s: position (%d, %d) != primary (%d, %d)", label, fseq, foff, pseq, poff)
	}
	pParts := listParts(t, p.dir)
	fParts := listParts(t, tf.dir)
	if len(pParts) != len(fParts) {
		t.Fatalf("%s: %d partition files != primary's %d (%v vs %v)", label, len(fParts), len(pParts), fParts, pParts)
	}
	for i, name := range pParts {
		if fParts[i] != name {
			t.Fatalf("%s: partition file %q != primary's %q", label, fParts[i], name)
		}
		a, err := os.ReadFile(filepath.Join(p.dir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(tf.dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: partition %s differs byte-wise (%d vs %d bytes)", label, name, len(a), len(b))
		}
	}
	segName := fmt.Sprintf("wal-%08d.log", pseq)
	a, err := os.ReadFile(filepath.Join(p.dir, segName))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(tf.dir, segName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(a)) < poff || int64(len(b)) < poff {
		t.Fatalf("%s: segment %s shorter than committed offset %d (%d / %d)", label, segName, poff, len(a), len(b))
	}
	if string(a[:poff]) != string(b[:poff]) {
		t.Fatalf("%s: WAL segment %s committed prefix differs", label, segName)
	}
	got := battery(t, tf.system())
	for i := range want {
		if got[i].Flow != want[i].Flow {
			t.Errorf("%s: battery %d flow %v != %v", label, i, got[i].Flow, want[i].Flow)
		}
		if len(got[i].Results) != len(want[i].Results) {
			t.Fatalf("%s: battery %d returned %d results, want %d", label, i, len(got[i].Results), len(want[i].Results))
		}
		for j := range want[i].Results {
			if got[i].Results[j] != want[i].Results[j] {
				t.Errorf("%s: battery %d rank %d: %+v != %+v", label, i, j, got[i].Results[j], want[i].Results[j])
			}
		}
	}
}

func listParts(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if partFileRE.MatchString(e.Name()) {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestReplicationCleanBootstrap pins the baseline: an empty follower
// bootstraps, tails to the committed position, and is bit-identical.
func TestReplicationCleanBootstrap(t *testing.T) {
	p := newTestPrimary(t, 3, 7)
	want := battery(t, p.sys)
	tf := startFollower(t, p.b.Space, t.TempDir(), []string{p.addr}, nil)
	defer tf.stop()
	waitConverged(t, p, tf)
	assertBitIdentical(t, "clean bootstrap", p, tf, want)
	if got := tf.fol.State().FullResyncs; got != 0 {
		t.Errorf("clean bootstrap took %d full resyncs, want 0", got)
	}
}

// TestFaultSweepPrimaryWrites kills the stream at every write position of a
// clean session — clean break on even positions, torn half-frame on odd —
// and requires the reconnect to converge bit-identically every time.
func TestFaultSweepPrimaryWrites(t *testing.T) {
	p := newTestPrimary(t, 3, 7)
	want := battery(t, p.sys)

	// Count a clean run's writes to bound the sweep.
	p.inj.arm(-1, false)
	tf := startFollower(t, p.b.Space, t.TempDir(), []string{p.addr}, nil)
	waitConverged(t, p, tf)
	total := p.inj.observedWrites()
	tf.stop()
	if total < 10 {
		t.Fatalf("clean run produced only %d stream writes — dataset too small to sweep", total)
	}
	t.Logf("sweeping %d primary write positions", total)

	for k := 0; k < total; k++ {
		p.inj.arm(k, k%2 == 1)
		tf := startFollower(t, p.b.Space, t.TempDir(), []string{p.addr}, nil)
		waitConverged(t, p, tf)
		if !p.inj.didFire() {
			// Heartbeat-position writes may land after convergence; the run
			// degenerates to a clean one, which is fine at the sweep's tail.
			t.Logf("write fault at %d never fired (converged first)", k)
		}
		assertBitIdentical(t, fmt.Sprintf("write fault at %d", k), p, tf, want)
		tf.stop()
	}
}

// TestFaultSweepFollowerCrash crashes the follower at every received frame
// of a clean run — mid-bootstrap, mid-file, mid-tail — then rejoins with a
// brand-new Follower over the same directory, which must converge without a
// byte of divergence.
func TestFaultSweepFollowerCrash(t *testing.T) {
	p := newTestPrimary(t, 3, 7)
	want := battery(t, p.sys)

	// Count a clean run's frames to bound the sweep.
	frames := 0
	var mu sync.Mutex
	tf := startFollower(t, p.b.Space, t.TempDir(), []string{p.addr}, func(typ byte, idx int) error {
		mu.Lock()
		frames++
		mu.Unlock()
		return nil
	})
	waitConverged(t, p, tf)
	mu.Lock()
	total := frames
	mu.Unlock()
	tf.stop()
	if total < 10 {
		t.Fatalf("clean run delivered only %d frames — dataset too small to sweep", total)
	}
	t.Logf("sweeping %d follower crash positions", total)

	for k := 0; k < total; k++ {
		dir := t.TempDir()
		crashed := make(chan struct{})
		var once sync.Once
		tf1 := startFollower(t, p.b.Space, dir, []string{p.addr}, func(typ byte, idx int) error {
			if idx == k {
				once.Do(func() { close(crashed) })
				return errors.New("injected follower crash")
			}
			return nil
		})
		select {
		case <-crashed:
		case <-time.After(10 * time.Second):
			t.Fatalf("crash at frame %d never triggered", k)
		}
		// "Kill" the process: stop the run and drop all in-memory state. The
		// store (if the bootstrap got that far) is closed so the directory's
		// lock frees; everything else the rejoin must rebuild from disk.
		tf1.stop()

		tf2 := startFollower(t, p.b.Space, dir, []string{p.addr}, nil)
		waitConverged(t, p, tf2)
		assertBitIdentical(t, fmt.Sprintf("crash at frame %d", k), p, tf2, want)
		tf2.stop()
	}
}

// TestPrimaryKillAndRecoverMidStream kills the serving primary process with
// replicated-but-unacked work in flight, recovers the same store directory
// behind a different address, and requires the follower to rotate to it,
// resume over a live handshake (no re-bootstrap) and converge — including
// ingest that happens only after the recovery.
func TestPrimaryKillAndRecoverMidStream(t *testing.T) {
	p := newTestPrimary(t, 2, 4)

	// Reserve the recovery address up front so the follower can rotate to it;
	// connections queue in the listener backlog until the server starts.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()

	tf := startFollower(t, p.b.Space, t.TempDir(), []string{p.addr, addrB}, nil)
	defer tf.stop()
	waitConverged(t, p, tf)

	// More committed work, some of it sealed, right before the kill — the
	// follower may or may not have applied it when the primary dies.
	batches := replBatches(p.b.Space.NumPLocations())
	if err := p.sys.Snapshot(); err != nil {
		t.Fatal(err)
	}

	// kill -9: connections die, nothing flushes, the store is simply closed
	// (its committed WAL is the only truth, as after a real crash).
	p.srv.CloseClientConnections()
	p.srv.Close()
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the same directory behind addrB.
	store2, recovered, err := tkplq.OpenPartitioned(tkplq.PartitionedOptions{Dir: p.dir, KeepSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	sys2, err := tkplq.NewSystem(p.b.Space, recovered, tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys2.SetPersister(store2)
	src2 := NewSource(SourceConfig{Store: store2, HeartbeatEvery: 50 * time.Millisecond, Logf: t.Logf})
	srvB := &http.Server{Handler: replMux(src2, nil)}
	go srvB.Serve(lnB)
	t.Cleanup(func() { srvB.Close() })

	// The recovered primary keeps ingesting and sealing.
	for i := 8; i < len(batches); i++ {
		if err := sys2.Ingest(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys2.Snapshot(); err != nil {
		t.Fatal(err)
	}

	p2 := &testPrimary{t: t, dir: p.dir, b: p.b, sys: sys2, store: store2, src: src2, addr: addrB}
	waitConverged(t, p2, tf)
	want := battery(t, sys2)
	assertBitIdentical(t, "after primary recovery", p2, tf, want)
	if st := tf.fol.State(); st.FullResyncs != 0 {
		t.Errorf("follower full-resynced %d times; a recovered primary must resume the live stream", st.FullResyncs)
	}
	if st := tf.fol.State(); st.Primary != addrB {
		t.Errorf("follower upstream = %s, want the recovered primary %s", st.Primary, addrB)
	}
}
