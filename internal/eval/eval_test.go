package eval

import (
	"math"
	"testing"

	"tkplq/internal/core"
	"tkplq/internal/geom"
	"tkplq/internal/indoor"
	"tkplq/internal/sim"
)

func res(ids ...indoor.SLocID) []core.Result {
	out := make([]core.Result, len(ids))
	for i, id := range ids {
		out[i] = core.Result{SLoc: id, Flow: float64(len(ids) - i)}
	}
	return out
}

func TestRecall(t *testing.T) {
	cases := []struct {
		name          string
		result, truth []core.Result
		want          float64
	}{
		{"identical", res(1, 2, 3), res(1, 2, 3), 1},
		{"reordered", res(3, 1, 2), res(1, 2, 3), 1},
		{"partial", res(1, 2, 9), res(1, 2, 3), 2.0 / 3},
		{"disjoint", res(7, 8, 9), res(1, 2, 3), 0},
		{"empty truth", res(1), nil, 1},
	}
	for _, c := range cases {
		if got := Recall(c.result, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Recall = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKendallIdenticalAndReversed(t *testing.T) {
	if got := KendallTau(res(1, 2, 3, 4), res(1, 2, 3, 4)); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical τ = %v, want 1", got)
	}
	if got := KendallTau(res(4, 3, 2, 1), res(1, 2, 3, 4)); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed τ = %v, want -1", got)
	}
	if got := KendallTau(res(1), res(1)); got != 1 {
		t.Errorf("singleton τ = %v", got)
	}
}

// TestKendallPaperExample replays the extension example of §5.1:
// ϕr = ⟨A,B,C⟩, ϕg = ⟨B,D,E⟩ extend to 5 elements; by the paper's
// concordance rule cp = 3, dp = 5, τ = (3-5)/10 = -0.2.
func TestKendallPaperExample(t *testing.T) {
	const (
		A indoor.SLocID = 1
		B indoor.SLocID = 2
		C indoor.SLocID = 3
		D indoor.SLocID = 4
		E indoor.SLocID = 5
	)
	got := KendallTau(res(A, B, C), res(B, D, E))
	if math.Abs(got-(-0.2)) > 1e-12 {
		t.Errorf("τ = %v, want -0.2", got)
	}
}

func TestKendallSwap(t *testing.T) {
	// One adjacent swap among 3: cp=2, dp=1, τ = 1/3.
	got := KendallTau(res(2, 1, 3), res(1, 2, 3))
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("τ = %v, want 1/3", got)
	}
}

func TestTopKOf(t *testing.T) {
	flows := map[indoor.SLocID]float64{1: 0.5, 2: 2.5, 3: 2.5, 4: 0.1}
	top := TopKOf(flows, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].SLoc != 2 || top[1].SLoc != 3 || top[2].SLoc != 1 {
		t.Errorf("TopKOf = %v", top)
	}
	all := TopKOf(flows, 10)
	if len(all) != 4 {
		t.Errorf("k beyond size should return all: %v", all)
	}
}

func TestGroundTruthFlows(t *testing.T) {
	// Two-partition space; o1 visits both, o2 stays in the first.
	b := indoor.NewBuilder()
	pa := b.AddPartition("a", indoor.Room, 0, geom.R(0, 0, 10, 10))
	pb := b.AddPartition("b", indoor.Room, 0, geom.R(10, 0, 20, 10))
	d := b.AddDoor(pa, pb, geom.Pt(10, 5))
	b.AddPartitioningPLoc(d)
	sa := b.AddSLocation("a", pa)
	sb := b.AddSLocation("b", pb)
	space, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	trajs := []sim.Trajectory{
		{OID: 1, Points: []sim.TrajPoint{
			{T: 0, Partition: pa, Pos: geom.Pt(5, 5)},
			{T: 1, Partition: pb, Pos: geom.Pt(11, 5)},
			{T: 2, Partition: pb, Pos: geom.Pt(12, 5)},
		}},
		{OID: 2, Points: []sim.TrajPoint{
			{T: 0, Partition: pa, Pos: geom.Pt(2, 2)},
			{T: 1, Partition: pa, Pos: geom.Pt(2, 3)},
		}},
	}
	flows := GroundTruthFlows(space, trajs, []indoor.SLocID{sa, sb}, 0, 2)
	if flows[sa] != 2 {
		t.Errorf("flow(a) = %v, want 2", flows[sa])
	}
	if flows[sb] != 1 {
		t.Errorf("flow(b) = %v, want 1", flows[sb])
	}
	// Interval clipping: only t=0 counts.
	clipped := GroundTruthFlows(space, trajs, []indoor.SLocID{sa, sb}, 0, 0)
	if clipped[sb] != 0 {
		t.Errorf("clipped flow(b) = %v, want 0", clipped[sb])
	}
	// Unqueried locations are absent.
	only := GroundTruthFlows(space, trajs, []indoor.SLocID{sb}, 0, 2)
	if _, ok := only[sa]; ok {
		t.Error("unqueried S-location should not appear")
	}
}

func TestEffectiveness(t *testing.T) {
	m := Effectiveness(res(1, 2, 3), res(1, 2, 3))
	if m.Recall != 1 || m.Tau != 1 {
		t.Errorf("Effectiveness = %+v", m)
	}
}
