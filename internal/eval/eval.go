// Package eval implements the evaluation machinery of paper §5.1: ground
// truth flows derived from exact trajectories, the recall of a top-k result
// against the ground-truth top-k, and the Kendall coefficient τ with the
// paper's ranking-extension procedure for non-identical location sets.
package eval

import (
	"sort"

	"tkplq/internal/core"
	"tkplq/internal/indoor"
	"tkplq/internal/iupt"
	"tkplq/internal/sim"
)

// GroundTruthFlows counts, for every queried S-location, the objects whose
// exact trajectory visited it during [ts, te] — the definition used to score
// effectiveness (§5.2: participants "specify their actual partitions to
// obtain the ground truth"; §5.3: exact per-second trajectories). Each
// object counts at most once per S-location, mirroring the indoor flow's
// distinct-object semantics.
func GroundTruthFlows(space *indoor.Space, trajs []sim.Trajectory, query []indoor.SLocID, ts, te iupt.Time) map[indoor.SLocID]float64 {
	inQuery := make(map[indoor.SLocID]bool, len(query))
	flows := make(map[indoor.SLocID]float64, len(query))
	for _, q := range query {
		inQuery[q] = true
		flows[q] = 0
	}
	for ti := range trajs {
		tr := &trajs[ti]
		seen := make(map[indoor.SLocID]bool)
		for i := range tr.Points {
			pt := &tr.Points[i]
			if pt.T < ts || pt.T > te {
				continue
			}
			for _, sl := range space.SLocsOfPartition(pt.Partition) {
				if inQuery[sl] && !seen[sl] {
					seen[sl] = true
					flows[sl]++
				}
			}
		}
	}
	return flows
}

// TopKOf ranks a flow map and returns the top k results (flow descending,
// ties by ascending S-location id — the same ordering the search algorithms
// use).
func TopKOf(flows map[indoor.SLocID]float64, k int) []core.Result {
	out := make([]core.Result, 0, len(flows))
	for s, f := range flows {
		out = append(out, core.Result{SLoc: s, Flow: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flow != out[j].Flow {
			return out[i].Flow > out[j].Flow
		}
		return out[i].SLoc < out[j].SLoc
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Recall is the fraction of the ground-truth top-k locations present in the
// result top-k (§5.1). Both arguments are ranked lists; only membership
// matters.
func Recall(result, truth []core.Result) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[indoor.SLocID]bool, len(result))
	for _, r := range result {
		in[r.SLoc] = true
	}
	hit := 0
	for _, tr := range truth {
		if in[tr.SLoc] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// KendallTau computes the paper's Kendall coefficient between a result
// ranking and a ground-truth ranking. When the two lists do not contain the
// same locations, both are extended to their union: missing elements are
// appended sharing one tie rank (§5.1's worked example). A pair is
// concordant when its order relation (before / after / tied) matches in
// both rankings, discordant when the strict orders oppose; pairs tied in
// exactly one ranking count as neither. τ = (cp − dp) / (K(K−1)/2) over the
// extended length K; identical rankings give 1, reversed rankings −1.
func KendallTau(result, truth []core.Result) float64 {
	ra := ranksOf(result, truth)
	rb := ranksOf(truth, result)
	ids := make([]indoor.SLocID, 0, len(ra))
	for id := range ra {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	k := len(ids)
	if k < 2 {
		return 1
	}
	cp, dp := 0, 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			da := ra[ids[i]] - ra[ids[j]]
			db := rb[ids[i]] - rb[ids[j]]
			switch {
			case da == 0 && db == 0:
				cp++
			case da == 0 || db == 0:
				// Tied in exactly one ranking: neither concordant nor
				// discordant.
			case (da < 0) == (db < 0):
				cp++
			default:
				dp++
			}
		}
	}
	return float64(cp-dp) / (0.5 * float64(k) * float64(k-1))
}

// ranksOf assigns ranks to the union of both lists from primary's point of
// view: primary's elements keep their positions; elements only in other are
// appended with one shared tie rank (= len(primary)).
func ranksOf(primary, other []core.Result) map[indoor.SLocID]int {
	ranks := make(map[indoor.SLocID]int, len(primary)+len(other))
	for i, r := range primary {
		ranks[r.SLoc] = i
	}
	tie := len(primary)
	for _, r := range other {
		if _, ok := ranks[r.SLoc]; !ok {
			ranks[r.SLoc] = tie
		}
	}
	return ranks
}

// Metrics bundles the two effectiveness measures for reporting.
type Metrics struct {
	Recall float64
	Tau    float64
}

// Effectiveness scores a result against ground truth.
func Effectiveness(result, truth []core.Result) Metrics {
	return Metrics{Recall: Recall(result, truth), Tau: KendallTau(result, truth)}
}
