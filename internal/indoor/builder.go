package indoor

import (
	"fmt"
	"sort"

	"tkplq/internal/geom"
)

// Builder assembles a Space. Add* methods record entities and return their
// ids; Build validates the assembly, derives cells, G_ISL, M_IL data and all
// mappings, and returns the immutable Space.
type Builder struct {
	partitions []Partition
	doors      []Door
	plocs      []PLocation
	slocs      []SLocation
	errs       []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Partitions returns a read-only view of the partitions added so far,
// letting generators consult bounds while assembling a space.
func (b *Builder) Partitions() []Partition { return b.partitions }

// AddPartition records a partition and returns its id.
func (b *Builder) AddPartition(name string, kind PartitionKind, floor int, bounds geom.Rect) PartitionID {
	id := PartitionID(len(b.partitions))
	if bounds.IsEmpty() || bounds.Area() <= 0 {
		b.errs = append(b.errs, fmt.Errorf("indoor: partition %q (%d) has empty bounds %v", name, id, bounds))
	}
	if floor < 0 {
		b.errs = append(b.errs, fmt.Errorf("indoor: partition %q (%d) has negative floor %d", name, id, floor))
	}
	b.partitions = append(b.partitions, Partition{ID: id, Name: name, Kind: kind, Floor: floor, Bounds: bounds})
	return id
}

// AddDoor records a door between two distinct partitions at a floor-local
// position and returns its id. For cross-floor doors (staircases) the
// position is interpreted on each partition's own floor.
func (b *Builder) AddDoor(p1, p2 PartitionID, pos geom.Point) DoorID {
	id := DoorID(len(b.doors))
	if p1 == p2 {
		b.errs = append(b.errs, fmt.Errorf("indoor: door %d connects partition %d to itself", id, p1))
	}
	for _, p := range [2]PartitionID{p1, p2} {
		if int(p) < 0 || int(p) >= len(b.partitions) {
			b.errs = append(b.errs, fmt.Errorf("indoor: door %d references unknown partition %d", id, p))
		}
	}
	b.doors = append(b.doors, Door{ID: id, Partitions: [2]PartitionID{p1, p2}, Pos: pos})
	return id
}

// AddPartitioningPLoc records a partitioning P-location at the given door
// and returns its id. Its position and floor are taken from the door.
func (b *Builder) AddPartitioningPLoc(door DoorID) PLocID {
	id := PLocID(len(b.plocs))
	pos := geom.Point{}
	floor := 0
	if int(door) < 0 || int(door) >= len(b.doors) {
		b.errs = append(b.errs, fmt.Errorf("indoor: P-location %d references unknown door %d", id, door))
	} else {
		d := b.doors[door]
		pos = d.Pos
		if int(d.Partitions[0]) >= 0 && int(d.Partitions[0]) < len(b.partitions) {
			floor = b.partitions[d.Partitions[0]].Floor
		}
	}
	b.plocs = append(b.plocs, PLocation{
		ID: id, Kind: Partitioning, Pos: pos, Floor: floor, Door: door, Partition: -1,
	})
	return id
}

// AddPresencePLoc records a presence P-location inside the given partition
// and returns its id.
func (b *Builder) AddPresencePLoc(partition PartitionID, pos geom.Point) PLocID {
	id := PLocID(len(b.plocs))
	floor := 0
	if int(partition) < 0 || int(partition) >= len(b.partitions) {
		b.errs = append(b.errs, fmt.Errorf("indoor: P-location %d references unknown partition %d", id, partition))
	} else {
		p := b.partitions[partition]
		floor = p.Floor
		if !p.Bounds.Expand(1e-9).ContainsPoint(pos) {
			b.errs = append(b.errs, fmt.Errorf("indoor: presence P-location %d at %v outside partition %q %v",
				id, pos, p.Name, p.Bounds))
		}
	}
	b.plocs = append(b.plocs, PLocation{
		ID: id, Kind: Presence, Pos: pos, Floor: floor, Door: -1, Partition: partition,
	})
	return id
}

// AddSLocation records a semantic location over the given partitions and
// returns its id. All partitions must end up in the same cell; Build
// verifies this (the paper's single-parent-cell assumption).
func (b *Builder) AddSLocation(name string, partitions ...PartitionID) SLocID {
	id := SLocID(len(b.slocs))
	if len(partitions) == 0 {
		b.errs = append(b.errs, fmt.Errorf("indoor: S-location %q (%d) has no partitions", name, id))
	}
	for _, p := range partitions {
		if int(p) < 0 || int(p) >= len(b.partitions) {
			b.errs = append(b.errs, fmt.Errorf("indoor: S-location %q (%d) references unknown partition %d", name, id, p))
		}
	}
	b.slocs = append(b.slocs, SLocation{ID: id, Name: name, Partitions: append([]PartitionID(nil), partitions...)})
	return id
}

// Build validates the assembly and derives the immutable Space.
func (b *Builder) Build() (*Space, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.partitions) == 0 {
		return nil, fmt.Errorf("indoor: space has no partitions")
	}

	s := &Space{
		partitions: b.partitions,
		doors:      b.doors,
		plocs:      b.plocs,
		slocs:      b.slocs,
	}

	// Floor layout for the global plane.
	maxFloor, maxX := 0, 0.0
	for _, p := range b.partitions {
		if p.Floor > maxFloor {
			maxFloor = p.Floor
		}
		if p.Bounds.MaxX > maxX {
			maxX = p.Bounds.MaxX
		}
	}
	s.numFloors = maxFloor + 1
	s.floorOffset = maxX + 50 // 50 m gap keeps floors disjoint in the plane

	b.deriveCells(s)
	if err := b.deriveSLocMappings(s); err != nil {
		return nil, err
	}
	b.derivePLocCells(s)
	b.deriveClasses(s)
	b.deriveGraph(s)

	return s, nil
}

// deriveCells computes cells as connected components of partitions linked by
// unmonitored doors (doors with no partitioning P-location).
func (b *Builder) deriveCells(s *Space) {
	monitored := make([]bool, len(b.doors))
	for _, p := range b.plocs {
		if p.Kind == Partitioning {
			monitored[p.Door] = true
		}
	}

	parent := make([]int, len(b.partitions))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, c int) {
		ra, rc := find(a), find(c)
		if ra != rc {
			parent[ra] = rc
		}
	}
	for i, d := range b.doors {
		if !monitored[i] {
			union(int(d.Partitions[0]), int(d.Partitions[1]))
		}
	}

	// Assign cell ids in order of first partition appearance for stability.
	cellOf := make(map[int]CellID)
	s.partitionCell = make([]CellID, len(b.partitions))
	for i := range b.partitions {
		root := find(i)
		id, ok := cellOf[root]
		if !ok {
			id = CellID(len(s.cells))
			cellOf[root] = id
			s.cells = append(s.cells, Cell{ID: id})
		}
		s.partitionCell[i] = id
		s.cells[id].Partitions = append(s.cells[id].Partitions, PartitionID(i))
	}
}

// deriveSLocMappings computes Cell (S-location -> parent cell) and C2S
// (cell -> S-locations), verifying the single-parent-cell assumption.
func (b *Builder) deriveSLocMappings(s *Space) error {
	s.cellOfSLoc = make([]CellID, len(b.slocs))
	s.slocsOfCell = make([][]SLocID, len(s.cells))
	s.slocsByPartition = make([][]SLocID, len(b.partitions))
	s.partitionsBySLoc = make(map[PartitionID]SLocID)
	for i, sl := range b.slocs {
		cell := s.partitionCell[sl.Partitions[0]]
		for _, pid := range sl.Partitions[1:] {
			if s.partitionCell[pid] != cell {
				return fmt.Errorf("indoor: S-location %q (%d) spans cells %d and %d; an S-location must have a single parent cell",
					sl.Name, sl.ID, cell, s.partitionCell[pid])
			}
		}
		s.cellOfSLoc[i] = cell
		s.slocsOfCell[cell] = append(s.slocsOfCell[cell], SLocID(i))
		for _, pid := range sl.Partitions {
			s.slocsByPartition[pid] = append(s.slocsByPartition[pid], SLocID(i))
			if _, ok := s.partitionsBySLoc[pid]; !ok {
				s.partitionsBySLoc[pid] = SLocID(i)
			}
		}
	}
	return nil
}

// derivePLocCells computes Cells(p) for every P-location.
func (b *Builder) derivePLocCells(s *Space) {
	s.plocCells = make([][]CellID, len(b.plocs))
	for i, p := range b.plocs {
		var cells []CellID
		if p.Kind == Partitioning {
			d := b.doors[p.Door]
			c1 := s.partitionCell[d.Partitions[0]]
			c2 := s.partitionCell[d.Partitions[1]]
			if c1 == c2 {
				// A monitored door whose sides were merged through another
				// unmonitored route does not actually separate cells.
				cells = []CellID{c1}
			} else if c1 < c2 {
				cells = []CellID{c1, c2}
			} else {
				cells = []CellID{c2, c1}
			}
		} else {
			cells = []CellID{s.partitionCell[p.Partition]}
		}
		s.plocCells[i] = cells
	}
}

// deriveClasses groups P-locations with identical Cells(p) into equivalence
// classes keyed by the smallest member id (§3.1.2).
func (b *Builder) deriveClasses(s *Space) {
	byKey := make(map[string][]PLocID)
	for i := range b.plocs {
		key := cellsKey(s.plocCells[i])
		byKey[key] = append(byKey[key], PLocID(i))
	}
	s.classRep = make([]PLocID, len(b.plocs))
	s.classMembers = make(map[PLocID][]PLocID, len(byKey))
	for _, members := range byKey {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		rep := members[0]
		s.classMembers[rep] = members
		for _, m := range members {
			s.classRep[m] = rep
		}
	}
}

func cellsKey(cells []CellID) string {
	buf := make([]byte, 0, len(cells)*4)
	for _, c := range cells {
		buf = append(buf, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
	}
	return string(buf)
}

// deriveGraph builds G_ISL: one edge per distinct cell pair separated by
// monitored doors, one loop edge per cell holding presence P-locations.
func (b *Builder) deriveGraph(s *Space) {
	type pairKey struct{ a, b CellID }
	edgeMap := make(map[pairKey][]PLocID)
	for i := range b.plocs {
		cells := s.plocCells[i]
		var key pairKey
		if len(cells) == 2 {
			key = pairKey{cells[0], cells[1]}
		} else {
			key = pairKey{cells[0], cells[0]}
		}
		edgeMap[key] = append(edgeMap[key], PLocID(i))
	}
	keys := make([]pairKey, 0, len(edgeMap))
	for k := range edgeMap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	edges := make([]GraphEdge, 0, len(keys))
	for _, k := range keys {
		plocs := edgeMap[k]
		sort.Slice(plocs, func(i, j int) bool { return plocs[i] < plocs[j] })
		edges = append(edges, GraphEdge{A: k.a, B: k.b, PLocs: plocs})
	}
	s.graph = newLocationGraph(len(s.cells), edges)
}
