package indoor

import (
	"fmt"
	"strings"
)

// DenseMatrix is a fully materialized Indoor Location Matrix, the exact
// N-by-N upper-triangular structure of paper §3.1.2. The Space's MIL method
// computes the same entries on demand from Cells(p) intersections in O(1)
// space; the dense form exists for small spaces, debugging and tests that
// cross-check the two representations.
type DenseMatrix struct {
	n       int
	entries [][][]CellID // entries[i][j-i] for j >= i
}

// BuildDenseMatrix materializes M_IL for the space. Memory is O(N²) in the
// number of P-locations; intended for small spaces.
func BuildDenseMatrix(s *Space) *DenseMatrix {
	n := s.NumPLocations()
	m := &DenseMatrix{n: n, entries: make([][][]CellID, n)}
	for i := 0; i < n; i++ {
		m.entries[i] = make([][]CellID, n-i)
		for j := i; j < n; j++ {
			m.entries[i][j-i] = s.MIL(PLocID(i), PLocID(j))
		}
	}
	return m
}

// N returns the matrix dimension.
func (m *DenseMatrix) N() int { return m.n }

// Lookup returns M_IL[pi, pj]; argument order is irrelevant (the matrix is
// upper triangular for the undirected door model).
func (m *DenseMatrix) Lookup(pi, pj PLocID) []CellID {
	if pi > pj {
		pi, pj = pj, pi
	}
	return m.entries[pi][pj-pi]
}

// Connected reports whether M_IL[pi, pj] is non-empty.
func (m *DenseMatrix) Connected(pi, pj PLocID) bool { return len(m.Lookup(pi, pj)) > 0 }

// String renders the matrix like the paper's Figure 3 (∅ for empty entries).
func (m *DenseMatrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.n; i++ {
		for j := i; j < m.n; j++ {
			cells := m.Lookup(PLocID(i), PLocID(j))
			if len(cells) == 0 {
				fmt.Fprintf(&sb, "M[p%d,p%d]=∅ ", i, j)
				continue
			}
			parts := make([]string, len(cells))
			for k, c := range cells {
				parts[k] = fmt.Sprintf("c%d", c)
			}
			fmt.Fprintf(&sb, "M[p%d,p%d]={%s} ", i, j, strings.Join(parts, ","))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
