package indoor

import "testing"

// TestDenseIDGuarantee asserts the dense-id invariant the engine's scratch
// structures rely on: every id of a built space indexes its range.
func TestDenseIDGuarantee(t *testing.T) {
	fig := Figure1Space()
	s := fig.Space
	d := s.DenseIDs()
	if d.Partitions != s.NumPartitions() || d.PLocs != s.NumPLocations() ||
		d.SLocs != s.NumSLocations() || d.Cells != s.NumCells() {
		t.Fatalf("DenseIDs %+v disagrees with NumX accessors", d)
	}
	for i := 0; i < d.Partitions; i++ {
		if got := s.Partition(PartitionID(i)).ID; got != PartitionID(i) {
			t.Errorf("partition %d stored as %d", i, got)
		}
	}
	for i := 0; i < d.PLocs; i++ {
		if got := s.PLocation(PLocID(i)).ID; got != PLocID(i) {
			t.Errorf("ploc %d stored as %d", i, got)
		}
	}
	for i := 0; i < d.SLocs; i++ {
		if got := s.SLocation(SLocID(i)).ID; got != SLocID(i) {
			t.Errorf("sloc %d stored as %d", i, got)
		}
	}
	for i := 0; i < d.Cells; i++ {
		if got := s.Cell(CellID(i)).ID; got != CellID(i) {
			t.Errorf("cell %d stored as %d", i, got)
		}
	}
}

func TestIDMarks(t *testing.T) {
	var m IDMarks
	m.Reset(4)
	if m.Has(0) || m.Has(3) {
		t.Fatal("fresh marks must be empty")
	}
	m.Set(1, 42)
	m.Set(3, 7)
	if pos, ok := m.Get(1); !ok || pos != 42 {
		t.Errorf("Get(1) = %d, %v", pos, ok)
	}
	if !m.Has(3) || m.Has(0) {
		t.Error("membership wrong after Set")
	}

	// A reset invalidates everything in O(1).
	m.Reset(4)
	if m.Has(1) || m.Has(3) {
		t.Error("Reset leaked marks from the previous generation")
	}

	// Growing keeps working.
	m.Reset(10)
	m.Set(9, 1)
	if !m.Has(9) {
		t.Error("mark lost after grow")
	}

	// Epoch wraparound must not resurrect stale marks.
	m.Set(2, 5)
	m.epoch = ^uint32(0) // next Reset wraps to 0 and must clear
	m.Reset(10)
	if m.Has(2) || m.Has(9) {
		t.Error("wraparound resurrected stale marks")
	}
	m.Set(4, 4)
	if !m.Has(4) {
		t.Error("marks broken after wraparound reset")
	}
}
