package indoor

import (
	"sort"
	"testing"

	"tkplq/internal/geom"
)

func cellSet(ids ...CellID) []CellID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalCells(a, b []CellID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// paperCells translates the paper's cell names (c1, c3..c6) to derived ids
// via the S-location parent-cell mapping.
func paperCells(f *Figure1) map[string]CellID {
	s := f.Space
	return map[string]CellID{
		"c1": s.CellOfSLoc(f.SLocs[0]), // Cell(r1) == Cell(r2)
		"c3": s.CellOfSLoc(f.SLocs[2]),
		"c4": s.CellOfSLoc(f.SLocs[3]),
		"c5": s.CellOfSLoc(f.SLocs[4]),
		"c6": s.CellOfSLoc(f.SLocs[5]),
	}
}

func TestFigure1CellDerivation(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	if s.NumCells() != 5 {
		t.Fatalf("NumCells = %d, want 5", s.NumCells())
	}
	// r1 and r2 share a cell; all other rooms are singleton cells.
	if s.CellOfSLoc(f.SLocs[0]) != s.CellOfSLoc(f.SLocs[1]) {
		t.Error("r1 and r2 should share the paper's cell c1")
	}
	seen := map[CellID]bool{}
	for i := 2; i < 6; i++ {
		c := s.CellOfSLoc(f.SLocs[i])
		if seen[c] {
			t.Errorf("S-location %d shares a cell unexpectedly", i)
		}
		seen[c] = true
	}
	c1 := s.CellOfSLoc(f.SLocs[0])
	if len(s.Cell(c1).Partitions) != 2 {
		t.Errorf("cell c1 should contain 2 partitions, got %d", len(s.Cell(c1).Partitions))
	}
}

func TestFigure1PLocCells(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	pc := paperCells(f)
	want := [][]CellID{
		cellSet(pc["c4"], pc["c5"]), // p1
		cellSet(pc["c4"], pc["c6"]), // p2
		cellSet(pc["c3"], pc["c4"]), // p3
		cellSet(pc["c1"], pc["c6"]), // p4
		cellSet(pc["c5"], pc["c6"]), // p5
		cellSet(pc["c6"]),           // p6
		cellSet(pc["c1"]),           // p7
		cellSet(pc["c6"]),           // p8
		cellSet(pc["c1"], pc["c6"]), // p9
	}
	for i, w := range want {
		got := s.PLocCells(f.PLocs[i])
		if !equalCells(got, w) {
			t.Errorf("Cells(p%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestFigure1MatrixMatchesPaper verifies every entry of the paper's
// Figure 3 indoor location matrix.
func TestFigure1MatrixMatchesPaper(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	pc := paperCells(f)
	cs := func(names ...string) []CellID {
		out := make([]CellID, len(names))
		for i, n := range names {
			out[i] = pc[n]
		}
		return cellSet(out...)
	}
	empty := []CellID{}
	// Row-major upper triangle, rows p1..p9 as printed in Figure 3.
	want := [9][9][]CellID{}
	set := func(i, j int, cells []CellID) {
		want[i-1][j-1] = cells
	}
	set(1, 1, cs("c4", "c5"))
	set(1, 2, cs("c4"))
	set(1, 3, cs("c4"))
	set(1, 4, empty)
	set(1, 5, cs("c5"))
	set(1, 6, empty)
	set(1, 7, empty)
	set(1, 8, empty)
	set(1, 9, empty)
	set(2, 2, cs("c4", "c6"))
	set(2, 3, cs("c4"))
	set(2, 4, cs("c6"))
	set(2, 5, cs("c6"))
	set(2, 6, cs("c6"))
	set(2, 7, empty)
	set(2, 8, cs("c6"))
	set(2, 9, cs("c6"))
	set(3, 3, cs("c3", "c4"))
	set(3, 4, empty)
	set(3, 5, empty)
	set(3, 6, empty)
	set(3, 7, empty)
	set(3, 8, empty)
	set(3, 9, empty)
	set(4, 4, cs("c1", "c6"))
	set(4, 5, cs("c6"))
	set(4, 6, cs("c6"))
	set(4, 7, cs("c1"))
	set(4, 8, cs("c6"))
	set(4, 9, cs("c1", "c6"))
	set(5, 5, cs("c5", "c6"))
	set(5, 6, cs("c6"))
	set(5, 7, empty)
	set(5, 8, cs("c6"))
	set(5, 9, cs("c6"))
	set(6, 6, cs("c6"))
	set(6, 7, empty)
	set(6, 8, cs("c6"))
	set(6, 9, cs("c6"))
	set(7, 7, cs("c1"))
	set(7, 8, empty)
	set(7, 9, cs("c1"))
	set(8, 8, cs("c6"))
	set(8, 9, cs("c6"))
	set(9, 9, cs("c1", "c6"))

	for i := 0; i < 9; i++ {
		for j := i; j < 9; j++ {
			got := s.MIL(f.PLocs[i], f.PLocs[j])
			if got == nil {
				got = []CellID{}
			}
			if !equalCells(got, want[i][j]) {
				t.Errorf("MIL[p%d,p%d] = %v, want %v", i+1, j+1, got, want[i][j])
			}
			wantConn := len(want[i][j]) > 0
			if s.MILConnected(f.PLocs[i], f.PLocs[j]) != wantConn {
				t.Errorf("MILConnected[p%d,p%d] != %v", i+1, j+1, wantConn)
			}
			// Symmetry of the on-demand lookup.
			rev := s.MIL(f.PLocs[j], f.PLocs[i])
			if rev == nil {
				rev = []CellID{}
			}
			if !equalCells(rev, want[i][j]) {
				t.Errorf("MIL[p%d,p%d] (reversed) = %v, want %v", j+1, i+1, rev, want[i][j])
			}
		}
	}
}

func TestDenseMatrixAgreesWithOnDemand(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	m := BuildDenseMatrix(s)
	if m.N() != s.NumPLocations() {
		t.Fatalf("N = %d", m.N())
	}
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			got := m.Lookup(PLocID(i), PLocID(j))
			want := s.MIL(PLocID(i), PLocID(j))
			if !equalCells(got, want) {
				t.Errorf("dense[%d,%d] = %v, want %v", i, j, got, want)
			}
			if m.Connected(PLocID(i), PLocID(j)) != s.MILConnected(PLocID(i), PLocID(j)) {
				t.Errorf("dense Connected[%d,%d] mismatch", i, j)
			}
		}
	}
	if m.String() == "" {
		t.Error("String should render something")
	}
}

func TestFigure1EquivalenceClasses(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	// p4 ≡ p9 ({c1,c6}); p6 ≡ p8 ({c6}); everything else singleton.
	if s.ClassRep(f.PLocs[8]) != f.PLocs[3] {
		t.Errorf("ClassRep(p9) = %d, want p4 (%d)", s.ClassRep(f.PLocs[8]), f.PLocs[3])
	}
	if s.ClassRep(f.PLocs[7]) != f.PLocs[5] {
		t.Errorf("ClassRep(p8) = %d, want p6 (%d)", s.ClassRep(f.PLocs[7]), f.PLocs[5])
	}
	for _, i := range []int{0, 1, 2, 4, 6} {
		if s.ClassRep(f.PLocs[i]) != f.PLocs[i] {
			t.Errorf("p%d should be its own representative", i+1)
		}
	}
	members := s.ClassMembers(f.PLocs[3])
	if len(members) != 2 || members[0] != f.PLocs[3] || members[1] != f.PLocs[8] {
		t.Errorf("ClassMembers(p4) = %v", members)
	}
}

func TestFigure1Graph(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	g := s.Graph()
	pc := paperCells(f)
	if g.NumCells() != 5 {
		t.Fatalf("graph cells = %d", g.NumCells())
	}
	// 5 inter-cell edges + 2 loop edges (c6 presence pair, c1 presence).
	if g.NumEdges() != 7 {
		t.Fatalf("graph edges = %d, want 7", g.NumEdges())
	}
	loops := 0
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.IsLoop() {
			loops++
			if e.A == pc["c6"] && len(e.PLocs) != 2 {
				t.Errorf("loop on c6 should hold p6,p8; got %v", e.PLocs)
			}
		}
	}
	if loops != 2 {
		t.Errorf("loops = %d, want 2", loops)
	}
	// c6 (hallway cell) neighbors c1, c4, c5.
	nb := g.Neighbors(pc["c6"])
	if len(nb) != 3 {
		t.Errorf("c6 neighbors = %v, want 3 cells", nb)
	}
	if g.Degree(pc["c6"]) != 4 { // p4/p9 edge + p2 + p5 edges... edges not plocs
		// Degree counts non-loop edges: (c1,c6), (c4,c6), (c5,c6) = 3.
		t.Logf("note: degree counts edges, not P-locations")
	}
	if d := g.Degree(pc["c3"]); d != 1 {
		t.Errorf("Degree(c3) = %d, want 1", d)
	}
	if s.Graph().String() == "" {
		t.Error("String should render")
	}
}

func TestGlobalPlaneMapping(t *testing.T) {
	b := NewBuilder()
	p0 := b.AddPartition("a", Room, 0, geom.R(0, 0, 10, 10))
	p1 := b.AddPartition("b", Room, 2, geom.R(0, 0, 10, 10))
	b.AddDoor(p0, p1, geom.Pt(5, 5)) // cross-floor staircase door
	b.AddSLocation("a", p0)
	b.AddSLocation("b", p1)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFloors() != 3 {
		t.Errorf("NumFloors = %d, want 3", s.NumFloors())
	}
	r0 := s.PartitionGlobalBounds(p0)
	r1 := s.PartitionGlobalBounds(p1)
	if r0.Intersects(r1) {
		t.Errorf("different floors must not intersect in the global plane: %v vs %v", r0, r1)
	}
	if s.GlobalPoint(2, geom.Pt(1, 1)).X <= s.GlobalPoint(0, geom.Pt(1, 1)).X {
		t.Error("higher floors should map to larger X")
	}
	// Unmonitored cross-floor door merges both partitions into one cell.
	if s.NumCells() != 1 {
		t.Errorf("NumCells = %d, want 1", s.NumCells())
	}
}

func TestBuilderValidation(t *testing.T) {
	t.Run("no partitions", func(t *testing.T) {
		if _, err := NewBuilder().Build(); err == nil {
			t.Error("expected error for empty space")
		}
	})
	t.Run("empty bounds", func(t *testing.T) {
		b := NewBuilder()
		b.AddPartition("bad", Room, 0, geom.Rect{})
		if _, err := b.Build(); err == nil {
			t.Error("expected error for empty partition bounds")
		}
	})
	t.Run("self door", func(t *testing.T) {
		b := NewBuilder()
		p := b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
		b.AddDoor(p, p, geom.Pt(0, 0))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for self-door")
		}
	})
	t.Run("door bad partition", func(t *testing.T) {
		b := NewBuilder()
		p := b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
		b.AddDoor(p, PartitionID(99), geom.Pt(0, 0))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for unknown partition")
		}
	})
	t.Run("presence outside partition", func(t *testing.T) {
		b := NewBuilder()
		p := b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
		b.AddPresencePLoc(p, geom.Pt(5, 5))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for presence P-location outside bounds")
		}
	})
	t.Run("ploc bad door", func(t *testing.T) {
		b := NewBuilder()
		b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
		b.AddPartitioningPLoc(DoorID(7))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for unknown door")
		}
	})
	t.Run("sloc no partitions", func(t *testing.T) {
		b := NewBuilder()
		b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
		b.AddSLocation("empty")
		if _, err := b.Build(); err == nil {
			t.Error("expected error for empty S-location")
		}
	})
	t.Run("sloc spans cells", func(t *testing.T) {
		b := NewBuilder()
		pa := b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
		pb := b.AddPartition("b", Room, 0, geom.R(1, 0, 2, 1))
		d := b.AddDoor(pa, pb, geom.Pt(1, 0.5))
		b.AddPartitioningPLoc(d) // splits a and b into two cells
		b.AddSLocation("span", pa, pb)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for S-location spanning cells")
		}
	})
	t.Run("negative floor", func(t *testing.T) {
		b := NewBuilder()
		b.AddPartition("a", Room, -1, geom.R(0, 0, 1, 1))
		if _, err := b.Build(); err == nil {
			t.Error("expected error for negative floor")
		}
	})
}

func TestMonitoredDoorMergedByCycle(t *testing.T) {
	// Two partitions joined by both a monitored and an unmonitored door:
	// the partitioning P-location does not actually separate cells, so
	// Cells(p) must collapse to a single cell.
	b := NewBuilder()
	pa := b.AddPartition("a", Room, 0, geom.R(0, 0, 1, 1))
	pb := b.AddPartition("b", Room, 0, geom.R(1, 0, 2, 1))
	d1 := b.AddDoor(pa, pb, geom.Pt(1, 0.2))
	b.AddDoor(pa, pb, geom.Pt(1, 0.8)) // unmonitored
	p := b.AddPartitioningPLoc(d1)
	b.AddSLocation("a", pa)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCells() != 1 {
		t.Fatalf("NumCells = %d, want 1", s.NumCells())
	}
	if got := s.PLocCells(p); len(got) != 1 {
		t.Errorf("Cells(p) = %v, want single cell", got)
	}
	// The P-location lands on a loop edge of the single cell.
	g := s.Graph()
	if g.NumEdges() != 1 || !g.Edge(0).IsLoop() {
		t.Errorf("expected a single loop edge, got %d edges", g.NumEdges())
	}
}

func TestAccessorsAndHelpers(t *testing.T) {
	f := Figure1Space()
	s := f.Space
	if s.NumPartitions() != 6 || s.NumDoors() != 7 || s.NumPLocations() != 9 || s.NumSLocations() != 6 {
		t.Fatalf("counts: %d partitions, %d doors, %d plocs, %d slocs",
			s.NumPartitions(), s.NumDoors(), s.NumPLocations(), s.NumSLocations())
	}
	if s.Partition(f.Rooms[5]).Kind != Hallway {
		t.Error("r6 should be a hallway")
	}
	if got := s.SLocOfPartition(f.Rooms[0]); got != f.SLocs[0] {
		t.Errorf("SLocOfPartition(r1) = %d", got)
	}
	doors := s.DoorsOfPartition(f.Rooms[5]) // hallway touches r1-r6, r2-r6, r4-r6, r5-r6
	if len(doors) != 4 {
		t.Errorf("hallway doors = %d, want 4", len(doors))
	}
	plocs := s.PLocsOfDoor(f.Doors["r1-r6"])
	if len(plocs) != 1 || plocs[0] != f.PLocs[3] {
		t.Errorf("PLocsOfDoor(r1-r6) = %v", plocs)
	}
	if s.SLocBounds(f.SLocs[0]).IsEmpty() {
		t.Error("S-location bounds should not be empty")
	}
	if s.CellBounds(s.CellOfSLoc(f.SLocs[0])).IsEmpty() {
		t.Error("cell bounds should not be empty")
	}
	if s.PLocGlobalPos(f.PLocs[0]) != s.PLocation(f.PLocs[0]).Pos {
		t.Error("floor-0 global position should equal local position")
	}
	if Room.String() != "room" || Hallway.String() != "hallway" || Staircase.String() != "staircase" {
		t.Error("PartitionKind.String broken")
	}
	if Partitioning.String() != "partitioning" || Presence.String() != "presence" {
		t.Error("PLocKind.String broken")
	}
	if PartitionKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}
