package indoor

import "fmt"

// LocationGraph is the Indoor Space Location Graph G_ISL = (C, E, le) of
// paper §3.1.1: vertices are cells; an edge between two distinct cells
// carries the partitioning P-locations whose doors separate them; a loop
// edge on a cell carries the presence P-locations inside it. Each edge's
// P-location set is one equivalence class of the M_IL merge (§3.1.2).
type LocationGraph struct {
	numCells int
	edges    []GraphEdge
	adj      [][]int // cell -> indices into edges (loops included once)
}

// GraphEdge is an edge of G_ISL. A == B denotes a loop edge.
type GraphEdge struct {
	A, B  CellID
	PLocs []PLocID // the label le(<A,B>)
}

// IsLoop reports whether the edge is a loop (presence P-locations).
func (e GraphEdge) IsLoop() bool { return e.A == e.B }

// NumCells returns the number of vertices.
func (g *LocationGraph) NumCells() int { return g.numCells }

// NumEdges returns the number of edges, loops included.
func (g *LocationGraph) NumEdges() int { return len(g.edges) }

// Edge returns the i-th edge.
func (g *LocationGraph) Edge(i int) GraphEdge { return g.edges[i] }

// EdgesOf returns the indices of edges incident to cell c (loops included).
// The returned slice must not be modified.
func (g *LocationGraph) EdgesOf(c CellID) []int { return g.adj[c] }

// Neighbors returns the cells adjacent to c via non-loop edges, without
// duplicates.
func (g *LocationGraph) Neighbors(c CellID) []CellID {
	var out []CellID
	seen := make(map[CellID]bool)
	for _, ei := range g.adj[c] {
		e := g.edges[ei]
		if e.IsLoop() {
			continue
		}
		other := e.A
		if other == c {
			other = e.B
		}
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	return out
}

// Degree returns the number of non-loop edges incident to c.
func (g *LocationGraph) Degree(c CellID) int {
	n := 0
	for _, ei := range g.adj[c] {
		if !g.edges[ei].IsLoop() {
			n++
		}
	}
	return n
}

// String renders a compact description for debugging.
func (g *LocationGraph) String() string {
	return fmt.Sprintf("G_ISL{cells: %d, edges: %d}", g.numCells, len(g.edges))
}

func newLocationGraph(numCells int, edges []GraphEdge) *LocationGraph {
	g := &LocationGraph{numCells: numCells, edges: edges, adj: make([][]int, numCells)}
	for i, e := range edges {
		g.adj[e.A] = append(g.adj[e.A], i)
		if e.B != e.A {
			g.adj[e.B] = append(g.adj[e.B], i)
		}
	}
	return g
}
