// Package indoor models indoor spaces the way the paper does (§2.1, §3.1):
// partitions (rooms, hallways, staircases) connected by doors; positioning
// P-locations that are either *partitioning* (mounted at doors, splitting the
// space into cells) or *presence* (inside a cell); user-defined semantic
// S-locations; the cells induced by the partitioning P-locations; the Indoor
// Space Location Graph G_ISL; and the Indoor Location Matrix M_IL.
//
// Spaces are immutable once built. Use Builder to assemble one; Build derives
// cells, the graph, the matrix and all mappings, and validates consistency.
package indoor

import (
	"fmt"

	"tkplq/internal/geom"
)

// PartitionID identifies a partition (room/hallway/staircase).
type PartitionID int32

// DoorID identifies a door between two partitions.
type DoorID int32

// PLocID identifies a positioning P-location.
type PLocID int32

// SLocID identifies a semantic S-location.
type SLocID int32

// CellID identifies a derived indoor cell.
type CellID int32

// NoCell marks the absence of a cell reference.
const NoCell CellID = -1

// PartitionKind classifies partitions. The paper treats hallways and
// staircases as rooms for topology purposes; the kind is retained for data
// generation and reporting.
type PartitionKind uint8

// Partition kinds.
const (
	Room PartitionKind = iota
	Hallway
	Staircase
)

// String implements fmt.Stringer.
func (k PartitionKind) String() string {
	switch k {
	case Room:
		return "room"
	case Hallway:
		return "hallway"
	case Staircase:
		return "staircase"
	default:
		return fmt.Sprintf("PartitionKind(%d)", uint8(k))
	}
}

// PLocKind distinguishes partitioning from presence P-locations (§2.1).
type PLocKind uint8

// P-location kinds.
const (
	// Partitioning P-locations sit at doors; an object cannot change cell
	// without being observed at one.
	Partitioning PLocKind = iota
	// Presence P-locations merely witness an object inside a cell.
	Presence
)

// String implements fmt.Stringer.
func (k PLocKind) String() string {
	if k == Partitioning {
		return "partitioning"
	}
	return "presence"
}

// Partition is an indoor partition with floor-local axis-aligned bounds.
type Partition struct {
	ID     PartitionID
	Name   string
	Kind   PartitionKind
	Floor  int
	Bounds geom.Rect // floor-local coordinates
}

// Door connects exactly two distinct partitions. Doors between partitions on
// different floors model staircase landings.
type Door struct {
	ID         DoorID
	Partitions [2]PartitionID
	Pos        geom.Point // floor-local; shared by both sides
}

// PLocation is a discrete positioning location (§2.1). A partitioning
// P-location references the door it monitors; a presence P-location
// references its containing partition.
type PLocation struct {
	ID        PLocID
	Kind      PLocKind
	Pos       geom.Point // floor-local
	Floor     int
	Door      DoorID      // valid iff Kind == Partitioning
	Partition PartitionID // valid iff Kind == Presence
}

// SLocation is a user-defined semantic location: one or more partitions that
// must belong to a single cell (the paper's parent-cell assumption, §3.1.1).
type SLocation struct {
	ID         SLocID
	Name       string
	Partitions []PartitionID
}

// Cell is a maximal group of partitions an object can roam without passing
// any partitioning P-location.
type Cell struct {
	ID         CellID
	Partitions []PartitionID
}

// Space is an immutable, validated indoor space with all derived structures.
type Space struct {
	partitions []Partition
	doors      []Door
	plocs      []PLocation
	slocs      []SLocation
	cells      []Cell

	partitionCell    []CellID   // partition -> cell
	cellOfSLoc       []CellID   // S-location -> parent cell (paper's Cell mapping)
	slocsOfCell      [][]SLocID // cell -> S-locations (paper's C2S mapping)
	slocsByPartition [][]SLocID // partition -> S-locations using it
	plocCells        [][]CellID // P-location -> incident cells, sorted (Cells(p))
	classRep         []PLocID   // P-location -> smallest-id equivalent P-location
	classMembers     map[PLocID][]PLocID

	graph *LocationGraph

	floorOffset float64 // X translation between consecutive floors
	numFloors   int

	partitionsBySLoc map[PartitionID]SLocID // partition -> first S-location using it
}

// NumPartitions returns the number of partitions.
func (s *Space) NumPartitions() int { return len(s.partitions) }

// NumDoors returns the number of doors.
func (s *Space) NumDoors() int { return len(s.doors) }

// NumPLocations returns the number of P-locations.
func (s *Space) NumPLocations() int { return len(s.plocs) }

// NumSLocations returns the number of S-locations.
func (s *Space) NumSLocations() int { return len(s.slocs) }

// NumCells returns the number of derived cells.
func (s *Space) NumCells() int { return len(s.cells) }

// NumFloors returns the number of floors (max floor index + 1).
func (s *Space) NumFloors() int { return s.numFloors }

// Partition returns the partition with the given id.
func (s *Space) Partition(id PartitionID) Partition { return s.partitions[id] }

// Door returns the door with the given id.
func (s *Space) Door(id DoorID) Door { return s.doors[id] }

// PLocation returns the P-location with the given id.
func (s *Space) PLocation(id PLocID) PLocation { return s.plocs[id] }

// SLocation returns the S-location with the given id.
func (s *Space) SLocation(id SLocID) SLocation { return s.slocs[id] }

// Cell returns the cell with the given id.
func (s *Space) Cell(id CellID) Cell { return s.cells[id] }

// Graph returns the indoor space location graph G_ISL.
func (s *Space) Graph() *LocationGraph { return s.graph }

// CellOfPartition returns the cell containing the partition.
func (s *Space) CellOfPartition(id PartitionID) CellID { return s.partitionCell[id] }

// CellOfSLoc implements the paper's Cell mapping: the parent cell of an
// S-location.
func (s *Space) CellOfSLoc(id SLocID) CellID { return s.cellOfSLoc[id] }

// SLocsOfCell implements the paper's C2S mapping: the S-locations contained
// in a cell. The returned slice must not be modified.
func (s *Space) SLocsOfCell(id CellID) []SLocID { return s.slocsOfCell[id] }

// PLocCells returns Cells(p): the sorted cells incident to a P-location
// (two for a partitioning P-location separating distinct cells, one
// otherwise). The returned slice must not be modified.
func (s *Space) PLocCells(id PLocID) []CellID { return s.plocCells[id] }

// ClassRep returns the representative (smallest id) of p's equivalence
// class: P-locations with identical Cells(p) are interchangeable in M_IL
// lookups (§3.1.2) and are merged by the intra-merge reduction.
func (s *Space) ClassRep(id PLocID) PLocID { return s.classRep[id] }

// ClassMembers returns all P-locations equivalent to rep, which must be a
// class representative. The returned slice must not be modified.
func (s *Space) ClassMembers(rep PLocID) []PLocID { return s.classMembers[rep] }

// MIL implements the Indoor Location Matrix lookup M_IL[pi, pj] (§3.1.2):
// the cells through which pj is directly reachable from pi. For pi == pj it
// returns Cells(pi) (the adjacent cells of a partitioning P-location, or the
// containing cell of a presence P-location). The result is sorted; it may
// alias internal storage and must not be modified.
func (s *Space) MIL(pi, pj PLocID) []CellID {
	a := s.plocCells[pi]
	if pi == pj {
		return a
	}
	b := s.plocCells[pj]
	return intersectSorted(a, b)
}

// MILConnected reports whether M_IL[pi, pj] is non-empty, i.e. the pair may
// appear consecutively on a valid path.
func (s *Space) MILConnected(pi, pj PLocID) bool {
	if pi == pj {
		return len(s.plocCells[pi]) > 0
	}
	return intersectsSorted(s.plocCells[pi], s.plocCells[pj])
}

// intersectSorted returns the intersection of two sorted CellID slices.
// Inputs are plocCells lists of at most two elements, so the matching
// elements of a are always contiguous and the result can alias a — the MIL
// lookup on the engine's hot path is allocation-free. The general fallback
// allocates only when longer inputs match non-contiguously (unreachable for
// cell lists, kept for safety).
func intersectSorted(a, b []CellID) []CellID {
	first, last, n := 0, -1, 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if n == 0 {
				first = i
			}
			last = i
			n++
			i++
			j++
		}
	}
	if n == 0 {
		return nil
	}
	if last-first+1 == n {
		return a[first : last+1]
	}
	out := make([]CellID, 0, n)
	i, j = 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func intersectsSorted(a, b []CellID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// FloorOffset returns the X translation applied per floor when mapping
// floor-local coordinates into the global plane used by R-trees.
func (s *Space) FloorOffset() float64 { return s.floorOffset }

// GlobalPoint maps a floor-local point to global plane coordinates. Floors
// are laid out side by side along X so that rectangles on different floors
// never intersect; R-tree pruning then respects floor separation.
func (s *Space) GlobalPoint(floor int, p geom.Point) geom.Point {
	return geom.Point{X: p.X + float64(floor)*s.floorOffset, Y: p.Y}
}

// GlobalRect maps a floor-local rectangle to global plane coordinates.
func (s *Space) GlobalRect(floor int, r geom.Rect) geom.Rect {
	dx := float64(floor) * s.floorOffset
	return geom.Rect{MinX: r.MinX + dx, MinY: r.MinY, MaxX: r.MaxX + dx, MaxY: r.MaxY}
}

// PartitionGlobalBounds returns the partition's bounds in the global plane.
func (s *Space) PartitionGlobalBounds(id PartitionID) geom.Rect {
	p := s.partitions[id]
	return s.GlobalRect(p.Floor, p.Bounds)
}

// SLocBounds returns the S-location's MBR in the global plane.
func (s *Space) SLocBounds(id SLocID) geom.Rect {
	out := geom.EmptyRect()
	for _, pid := range s.slocs[id].Partitions {
		out = out.Union(s.PartitionGlobalBounds(pid))
	}
	return out
}

// CellBounds returns the cell's MBR in the global plane.
func (s *Space) CellBounds(id CellID) geom.Rect {
	out := geom.EmptyRect()
	for _, pid := range s.cells[id].Partitions {
		out = out.Union(s.PartitionGlobalBounds(pid))
	}
	return out
}

// PLocGlobalPos returns the P-location's position in the global plane.
func (s *Space) PLocGlobalPos(id PLocID) geom.Point {
	p := s.plocs[id]
	return s.GlobalPoint(p.Floor, p.Pos)
}

// SLocOfPartition returns the first S-location that includes the partition,
// or -1 if the partition belongs to no S-location.
func (s *Space) SLocOfPartition(id PartitionID) SLocID {
	if sl, ok := s.partitionsBySLoc[id]; ok {
		return sl
	}
	return -1
}

// DoorsOfPartition returns the ids of all doors incident to the partition.
func (s *Space) DoorsOfPartition(id PartitionID) []DoorID {
	var out []DoorID
	for _, d := range s.doors {
		if d.Partitions[0] == id || d.Partitions[1] == id {
			out = append(out, d.ID)
		}
	}
	return out
}

// PLocsOfDoor returns the partitioning P-locations mounted at the door.
func (s *Space) PLocsOfDoor(id DoorID) []PLocID {
	var out []PLocID
	for _, p := range s.plocs {
		if p.Kind == Partitioning && p.Door == id {
			out = append(out, p.ID)
		}
	}
	return out
}

// SLocsContaining returns the S-locations that geometrically contain the
// P-location: for a presence P-location, the S-locations of its partition;
// for a partitioning P-location (on a door), the S-locations of both sides.
// This is the containment the simple-counting baselines use (§5.1: "Both SC
// and SC-ρ allow a P-location to be counted in multiple S-locations that all
// contain it").
func (s *Space) SLocsContaining(id PLocID) []SLocID {
	p := s.plocs[id]
	var parts []PartitionID
	if p.Kind == Presence {
		parts = []PartitionID{p.Partition}
	} else {
		d := s.doors[p.Door]
		parts = d.Partitions[:]
	}
	var out []SLocID
	seen := make(map[SLocID]bool, 2)
	for _, pid := range parts {
		for _, sl := range s.slocsByPartition[pid] {
			if !seen[sl] {
				seen[sl] = true
				out = append(out, sl)
			}
		}
	}
	return out
}

// SLocsOfPartition returns all S-locations that include the partition.
// The returned slice must not be modified.
func (s *Space) SLocsOfPartition(id PartitionID) []SLocID {
	return s.slocsByPartition[id]
}
