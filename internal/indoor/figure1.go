package indoor

import "tkplq/internal/geom"

// Figure1Space reconstructs the paper's running example (Figure 1): rooms
// r1..r5 and hallway r6, P-locations p1..p9 and the derived cells c1..c6.
// It is used by tests that verify the derived M_IL against the paper's
// Figure 3 and the presence/flow numbers of Examples 2-4, and by the
// quickstart example.
//
// Identifier mapping (paper name -> returned id):
//
//	partitions: r1..r6 -> Rooms[0..5]
//	P-locations: p1..p9 -> PLocs[0..8]
//	S-locations: r1..r6 -> SLocs[0..5] (each partition is one S-location)
//
// The derived cells satisfy: Cell(r1) == Cell(r2) (the paper's c1) and every
// other room is its own cell.
type Figure1 struct {
	Space *Space
	Rooms [6]PartitionID
	Doors map[string]DoorID
	PLocs [9]PLocID
	SLocs [6]SLocID
}

// Figure1Space builds the example space. It panics on a construction error,
// which would indicate a bug in the builder itself.
func Figure1Space() *Figure1 {
	b := NewBuilder()
	f := &Figure1{Doors: make(map[string]DoorID)}

	// Geometry: hallway r6 along the bottom (y 0..5); above it r4, r5, r2,
	// r1 from left to right; r3 on top of r4. Exact coordinates are
	// inessential -- the paper's example is purely topological.
	f.Rooms[0] = b.AddPartition("r1", Room, 0, geom.R(30, 5, 40, 20))
	f.Rooms[1] = b.AddPartition("r2", Room, 0, geom.R(20, 5, 30, 20))
	f.Rooms[2] = b.AddPartition("r3", Room, 0, geom.R(0, 20, 10, 30))
	f.Rooms[3] = b.AddPartition("r4", Room, 0, geom.R(0, 5, 10, 20))
	f.Rooms[4] = b.AddPartition("r5", Room, 0, geom.R(10, 5, 20, 20))
	f.Rooms[5] = b.AddPartition("r6", Hallway, 0, geom.R(0, 0, 40, 5))

	r := f.Rooms
	f.Doors["r4-r5"] = b.AddDoor(r[3], r[4], geom.Pt(10, 12)) // p1
	f.Doors["r4-r6"] = b.AddDoor(r[3], r[5], geom.Pt(5, 5))   // p2
	f.Doors["r3-r4"] = b.AddDoor(r[2], r[3], geom.Pt(5, 20))  // p3
	f.Doors["r1-r6"] = b.AddDoor(r[0], r[5], geom.Pt(35, 5))  // p4
	f.Doors["r5-r6"] = b.AddDoor(r[4], r[5], geom.Pt(15, 5))  // p5
	f.Doors["r2-r6"] = b.AddDoor(r[1], r[5], geom.Pt(25, 5))  // p9
	f.Doors["r1-r2"] = b.AddDoor(r[0], r[1], geom.Pt(30, 12)) // unmonitored

	f.PLocs[0] = b.AddPartitioningPLoc(f.Doors["r4-r5"])   // p1 {c4,c5}
	f.PLocs[1] = b.AddPartitioningPLoc(f.Doors["r4-r6"])   // p2 {c4,c6}
	f.PLocs[2] = b.AddPartitioningPLoc(f.Doors["r3-r4"])   // p3 {c3,c4}
	f.PLocs[3] = b.AddPartitioningPLoc(f.Doors["r1-r6"])   // p4 {c1,c6}
	f.PLocs[4] = b.AddPartitioningPLoc(f.Doors["r5-r6"])   // p5 {c5,c6}
	f.PLocs[5] = b.AddPresencePLoc(r[5], geom.Pt(20, 2.5)) // p6 {c6}
	f.PLocs[6] = b.AddPresencePLoc(r[0], geom.Pt(35, 12))  // p7 {c1}
	f.PLocs[7] = b.AddPresencePLoc(r[5], geom.Pt(30, 2.5)) // p8 {c6}
	f.PLocs[8] = b.AddPartitioningPLoc(f.Doors["r2-r6"])   // p9 {c1,c6}

	for i, name := range []string{"r1", "r2", "r3", "r4", "r5", "r6"} {
		f.SLocs[i] = b.AddSLocation(name, f.Rooms[i])
	}

	space, err := b.Build()
	if err != nil {
		panic("indoor: Figure1Space construction failed: " + err.Error())
	}
	f.Space = space
	return f
}
