package indoor

// Dense-id guarantee.
//
// Builder assigns every identifier sequentially from zero — PartitionID,
// DoorID, PLocID, SLocID by AddX call order, CellID by derivation order — so
// in a built Space every id is a valid index into [0, NumX()). The query
// engine's hot path relies on this: per-object scratch state (tracked-cell
// interning in the dense DP, seen-sets in the data reduction) is kept in
// flat arrays indexed by id instead of maps, reset in O(1) by bumping an
// epoch. DenseIDs exposes the guarantee programmatically; IDMarks is the
// epoch-stamped index the engine builds on.

// DenseIDs reports the sizes of the space's dense id ranges: every CellID is
// in [0, Cells), every PLocID in [0, PLocs), every SLocID in [0, SLocs) and
// every PartitionID in [0, Partitions). Scratch structures sized from these
// bounds can index by id directly.
type DenseIDs struct {
	Partitions int
	PLocs      int
	SLocs      int
	Cells      int
}

// DenseIDs returns the dense id ranges of the space.
func (s *Space) DenseIDs() DenseIDs {
	return DenseIDs{
		Partitions: len(s.partitions),
		PLocs:      len(s.plocs),
		SLocs:      len(s.slocs),
		Cells:      len(s.cells),
	}
}

// IDMarks is an epoch-stamped membership-and-position index over a dense id
// range [0, n). Set/Get/Has are O(1); Reset is O(1) amortized — it bumps the
// epoch instead of clearing, so one allocation serves arbitrarily many
// generations of use. The zero value is ready; Reset before each generation.
//
// IDMarks is not safe for concurrent use: it is scratch state, owned by one
// goroutine at a time (the engine keeps one per pooled scratch arena).
type IDMarks struct {
	epoch uint32
	slots []idSlot
}

type idSlot struct {
	epoch uint32
	pos   int32
}

// Reset invalidates all marks and (re)sizes the index for ids in [0, n).
func (m *IDMarks) Reset(n int) {
	if n > len(m.slots) {
		m.slots = make([]idSlot, n)
		m.epoch = 1
		return
	}
	m.epoch++
	if m.epoch == 0 { // uint32 wraparound: stale epochs could collide
		clear(m.slots)
		m.epoch = 1
	}
}

// Set marks id as present with the given position value.
func (m *IDMarks) Set(id int32, pos int32) {
	m.slots[id] = idSlot{epoch: m.epoch, pos: pos}
}

// Get returns the position stored for id and whether id is marked in the
// current generation.
func (m *IDMarks) Get(id int32) (int32, bool) {
	s := m.slots[id]
	return s.pos, s.epoch == m.epoch
}

// Has reports whether id is marked in the current generation.
func (m *IDMarks) Has(id int32) bool {
	return m.slots[id].epoch == m.epoch
}
