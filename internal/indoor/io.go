package indoor

import (
	"encoding/json"
	"fmt"
	"io"

	"tkplq/internal/geom"
)

// The JSON space format stores the *definition* of a space — partitions,
// doors, P-locations and S-locations. Derived structures (cells, G_ISL,
// M_IL, equivalence classes) are recomputed on load, so files stay small
// and derivations can never go stale.

type spaceJSON struct {
	Version    int             `json:"version"`
	Partitions []partitionJSON `json:"partitions"`
	Doors      []doorJSON      `json:"doors"`
	PLocs      []plocJSON      `json:"plocations"`
	SLocs      []slocJSON      `json:"slocations"`
}

type partitionJSON struct {
	Name   string     `json:"name"`
	Kind   string     `json:"kind"`
	Floor  int        `json:"floor"`
	Bounds [4]float64 `json:"bounds"` // minX, minY, maxX, maxY
}

type doorJSON struct {
	A int        `json:"a"`
	B int        `json:"b"`
	P [2]float64 `json:"pos"`
}

type plocJSON struct {
	Kind      string     `json:"kind"`
	Door      int        `json:"door,omitempty"`
	Partition int        `json:"partition,omitempty"`
	Pos       [2]float64 `json:"pos,omitempty"`
}

type slocJSON struct {
	Name       string `json:"name"`
	Partitions []int  `json:"partitions"`
}

const spaceFormatVersion = 1

// WriteJSON serializes the space definition.
func (s *Space) WriteJSON(w io.Writer) error {
	out := spaceJSON{Version: spaceFormatVersion}
	for _, p := range s.partitions {
		out.Partitions = append(out.Partitions, partitionJSON{
			Name:   p.Name,
			Kind:   p.Kind.String(),
			Floor:  p.Floor,
			Bounds: [4]float64{p.Bounds.MinX, p.Bounds.MinY, p.Bounds.MaxX, p.Bounds.MaxY},
		})
	}
	for _, d := range s.doors {
		out.Doors = append(out.Doors, doorJSON{
			A: int(d.Partitions[0]), B: int(d.Partitions[1]),
			P: [2]float64{d.Pos.X, d.Pos.Y},
		})
	}
	for _, p := range s.plocs {
		pj := plocJSON{Kind: p.Kind.String()}
		if p.Kind == Partitioning {
			pj.Door = int(p.Door)
		} else {
			pj.Partition = int(p.Partition)
			pj.Pos = [2]float64{p.Pos.X, p.Pos.Y}
		}
		out.PLocs = append(out.PLocs, pj)
	}
	for _, sl := range s.slocs {
		parts := make([]int, len(sl.Partitions))
		for i, pid := range sl.Partitions {
			parts[i] = int(pid)
		}
		out.SLocs = append(out.SLocs, slocJSON{Name: sl.Name, Partitions: parts})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a space definition and rebuilds the Space, re-deriving
// cells, graph, matrix and mappings through the ordinary Builder validation.
func ReadJSON(r io.Reader) (*Space, error) {
	var in spaceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("indoor: decoding space: %w", err)
	}
	if in.Version != spaceFormatVersion {
		return nil, fmt.Errorf("indoor: unsupported space format version %d", in.Version)
	}
	b := NewBuilder()
	for _, p := range in.Partitions {
		kind, err := parseKind(p.Kind)
		if err != nil {
			return nil, err
		}
		b.AddPartition(p.Name, kind, p.Floor,
			geom.Rect{MinX: p.Bounds[0], MinY: p.Bounds[1], MaxX: p.Bounds[2], MaxY: p.Bounds[3]})
	}
	for _, d := range in.Doors {
		b.AddDoor(PartitionID(d.A), PartitionID(d.B), geom.Pt(d.P[0], d.P[1]))
	}
	for _, p := range in.PLocs {
		switch p.Kind {
		case "partitioning":
			b.AddPartitioningPLoc(DoorID(p.Door))
		case "presence":
			b.AddPresencePLoc(PartitionID(p.Partition), geom.Pt(p.Pos[0], p.Pos[1]))
		default:
			return nil, fmt.Errorf("indoor: unknown P-location kind %q", p.Kind)
		}
	}
	for _, sl := range in.SLocs {
		parts := make([]PartitionID, len(sl.Partitions))
		for i, pid := range sl.Partitions {
			parts[i] = PartitionID(pid)
		}
		b.AddSLocation(sl.Name, parts...)
	}
	return b.Build()
}

func parseKind(s string) (PartitionKind, error) {
	switch s {
	case "room":
		return Room, nil
	case "hallway":
		return Hallway, nil
	case "staircase":
		return Staircase, nil
	default:
		return 0, fmt.Errorf("indoor: unknown partition kind %q", s)
	}
}
