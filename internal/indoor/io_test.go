package indoor

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpaceJSONRoundTrip(t *testing.T) {
	orig := Figure1Space().Space
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPartitions() != orig.NumPartitions() ||
		back.NumDoors() != orig.NumDoors() ||
		back.NumPLocations() != orig.NumPLocations() ||
		back.NumSLocations() != orig.NumSLocations() {
		t.Fatalf("entity counts changed: %d/%d/%d/%d vs %d/%d/%d/%d",
			back.NumPartitions(), back.NumDoors(), back.NumPLocations(), back.NumSLocations(),
			orig.NumPartitions(), orig.NumDoors(), orig.NumPLocations(), orig.NumSLocations())
	}
	// Derived structures must be identical: cells, mappings, matrix.
	if back.NumCells() != orig.NumCells() {
		t.Fatalf("cells = %d, want %d", back.NumCells(), orig.NumCells())
	}
	for i := 0; i < orig.NumSLocations(); i++ {
		if back.CellOfSLoc(SLocID(i)) != orig.CellOfSLoc(SLocID(i)) {
			t.Errorf("CellOfSLoc(%d) differs", i)
		}
		if back.SLocation(SLocID(i)).Name != orig.SLocation(SLocID(i)).Name {
			t.Errorf("S-location %d name differs", i)
		}
	}
	for i := 0; i < orig.NumPLocations(); i++ {
		for j := 0; j < orig.NumPLocations(); j++ {
			a := orig.MIL(PLocID(i), PLocID(j))
			b := back.MIL(PLocID(i), PLocID(j))
			if !equalCells(a, b) {
				t.Fatalf("MIL[%d,%d] differs: %v vs %v", i, j, a, b)
			}
		}
		if back.ClassRep(PLocID(i)) != orig.ClassRep(PLocID(i)) {
			t.Errorf("ClassRep(%d) differs", i)
		}
	}
	// Partition geometry preserved.
	for i := 0; i < orig.NumPartitions(); i++ {
		if back.Partition(PartitionID(i)).Bounds != orig.Partition(PartitionID(i)).Bounds {
			t.Errorf("partition %d bounds differ", i)
		}
		if back.Partition(PartitionID(i)).Kind != orig.Partition(PartitionID(i)).Kind {
			t.Errorf("partition %d kind differs", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"bad version", `{"version": 99}`},
		{"bad kind", `{"version":1,"partitions":[{"name":"a","kind":"pool","floor":0,"bounds":[0,0,1,1]}]}`},
		{"bad ploc kind", `{"version":1,
			"partitions":[{"name":"a","kind":"room","floor":0,"bounds":[0,0,1,1]}],
			"plocations":[{"kind":"teleport"}]}`},
		{"invalid space", `{"version":1,"partitions":[]}`},
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSpaceJSONStableOutput(t *testing.T) {
	s := Figure1Space().Space
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteJSON should be deterministic")
	}
	if !strings.Contains(a.String(), `"version": 1`) {
		t.Error("version field missing")
	}
}
