package experiments

import (
	"fmt"

	"tkplq/internal/core"
	"tkplq/internal/eval"
	"tkplq/internal/iupt"
	"tkplq/internal/sim"
)

// rdDefaults returns the default query shape on RD: k = 3, |Q| = 60% of the
// 14 S-locations, Δt = the scale's default (paper: 30 min).
func (c *Config) rdDefaults() (k int, qFrac float64, dt iupt.Time) {
	return 3, 0.6, c.rdParams().dts[0]
}

// runTable4 reproduces Table 4: every method in the default setting, with
// running time, pruning ratio and effectiveness, including the -ORG
// variants without data reduction.
func runTable4(cfg *Config) ([]Table, error) {
	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	k, qFrac, dt := cfg.rdDefaults()
	drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+1)

	type method struct {
		name  string
		exact bool
		run   func(d queryDraw) (methodRun, error)
	}
	exact := func(opts core.Options, algo core.Algorithm) func(d queryDraw) (methodRun, error) {
		return func(d queryDraw) (methodRun, error) {
			return runExact(opts, ds, ds.Table, d, k, algo)
		}
	}
	bl := func(name string) func(d queryDraw) (methodRun, error) {
		return func(d queryDraw) (methodRun, error) {
			return runBaseline(name, ds, ds.Table, d, k, cfg.mcRounds(), cfg.Seed+2), nil
		}
	}
	org := core.Options{DisableReduction: true}
	methods := []method{
		{"SC", false, bl("SC")},
		{"SC-rho(0.25)", false, bl("SC-rho")},
		{fmt.Sprintf("MC(%d)", cfg.mcRounds()), false, bl("MC")},
		{"BF", true, exact(core.Options{}, core.AlgoBestFirst)},
		{"NL", true, exact(core.Options{}, core.AlgoNestedLoop)},
		{"Naive", true, exact(core.Options{}, core.AlgoNaive)},
		{"BF-ORG", true, exact(org, core.AlgoBestFirst)},
		{"NL-ORG", true, exact(org, core.AlgoNestedLoop)},
		{"Naive-ORG", true, exact(org, core.AlgoNaive)},
	}

	tbl := Table{
		ID:     "T4",
		Title:  "Performance comparison in default setting (RD analog)",
		Header: []string{"method", "time", "pruning", "tau", "recall"},
		Notes: []string{
			"expected shape (paper Table 4): SC/SC-rho fastest but weakest tau/recall;",
			"BF < NL < Naive on time; -ORG variants much slower; MC slowest per quality;",
			fmt.Sprintf("k=%d |Q|=%.0f%% Δt=%ds, %d random queries", k, 60.0, dt, len(drawsList)),
		},
	}
	for _, m := range methods {
		var a agg
		for _, d := range drawsList {
			r, err := m.run(d)
			if err != nil {
				return nil, err
			}
			truth := truthTopK(ds, d, k)
			a.addRun(r, eval.Effectiveness(r.Res, truth))
		}
		pr := "-"
		if m.exact {
			pr = fpct(a.avgPrune())
		}
		tbl.Rows = append(tbl.Rows, []string{
			m.name, fsec(a.avgSeconds()), pr, f3(a.avgTau()), f3(a.avgRecall()),
		})
	}
	return []Table{tbl}, nil
}

// mssVariants derives mss-truncated tables once per run.
func mssVariants(ds *Dataset) map[int]*iupt.Table {
	out := make(map[int]*iupt.Table, 4)
	for mss := 1; mss <= 4; mss++ {
		if mss == 4 {
			out[mss] = ds.Table
			continue
		}
		out[mss] = sim.TruncateSamples(ds.Table, mss)
	}
	return out
}

// runTable5 reproduces Table 5: running time vs mss for BF, SC, SC-ρ, MC.
func runTable5(cfg *Config) ([]Table, error) {
	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	k, qFrac, dt := cfg.rdDefaults()
	drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+3)
	variants := mssVariants(ds)

	tbl := Table{
		ID:     "T5",
		Title:  "Running time vs mss (RD analog)",
		Header: []string{"method", "mss=1", "mss=2", "mss=3", "mss=4"},
		Notes: []string{
			"expected shape (paper Table 5): all methods slow down with mss;",
			"BF grows fastest (larger path sets), MC orders of magnitude above all",
		},
	}
	methods := []string{"BF", "SC", "SC-rho", "MC"}
	for _, name := range methods {
		row := []string{name}
		for mss := 1; mss <= 4; mss++ {
			var a agg
			for _, d := range drawsList {
				var r methodRun
				var err error
				if name == "BF" {
					r, err = runExact(core.Options{}, ds, variants[mss], d, k, core.AlgoBestFirst)
					if err != nil {
						return nil, err
					}
				} else {
					r = runBaseline(name, ds, variants[mss], d, k, cfg.mcRounds(), cfg.Seed+4)
				}
				a.addRun(r, eval.Metrics{})
			}
			row = append(row, fsec(a.avgSeconds()))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return []Table{tbl}, nil
}

// runFigure7 reproduces Figure 7: effectiveness (τ and recall) vs mss.
func runFigure7(cfg *Config) ([]Table, error) {
	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	k, qFrac, dt := cfg.rdDefaults()
	drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+5)
	variants := mssVariants(ds)

	tau := Table{
		ID:     "F7a",
		Title:  "Kendall tau vs mss (RD analog)",
		Header: []string{"method", "mss=1", "mss=2", "mss=3", "mss=4"},
		Notes: []string{
			"expected shape (paper Fig. 7): SC flat; SC-rho, MC, BF all improve",
			"with more samples; BF highest from mss>=2",
		},
	}
	rec := Table{
		ID:     "F7b",
		Title:  "Recall vs mss (RD analog)",
		Header: tau.Header,
	}
	for _, name := range []string{"BF", "SC", "SC-rho", "MC"} {
		tauRow, recRow := []string{name}, []string{name}
		for mss := 1; mss <= 4; mss++ {
			var a agg
			for _, d := range drawsList {
				var r methodRun
				var err error
				if name == "BF" {
					r, err = runExact(core.Options{}, ds, variants[mss], d, k, core.AlgoBestFirst)
					if err != nil {
						return nil, err
					}
				} else {
					r = runBaseline(name, ds, variants[mss], d, k, cfg.mcRounds(), cfg.Seed+6)
				}
				a.addRun(r, eval.Effectiveness(r.Res, truthTopK(ds, d, k)))
			}
			tauRow = append(tauRow, f3(a.avgTau()))
			recRow = append(recRow, f3(a.avgRecall()))
		}
		tau.Rows = append(tau.Rows, tauRow)
		rec.Rows = append(rec.Rows, recRow)
	}
	return []Table{tau, rec}, nil
}

// efficiencySweepRD is the common body of Figures 8-10: NL vs BF time and
// pruning ratio across one swept parameter.
func efficiencySweepRD(cfg *Config, id, title, param string,
	sweep []string, mk func(i int) (k int, qFrac float64, dt iupt.Time), seed int64) ([]Table, error) {

	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	timeT := Table{
		ID:     id + "a",
		Title:  "Running time vs " + param + " (" + title + ")",
		Header: append([]string{"method"}, sweep...),
	}
	pruneT := Table{
		ID:     id + "b",
		Title:  "Pruning ratio vs " + param + " (" + title + ")",
		Header: append([]string{"method"}, sweep...),
	}
	for _, algo := range []core.Algorithm{core.AlgoNestedLoop, core.AlgoBestFirst} {
		name := "NL"
		if algo == core.AlgoBestFirst {
			name = "BF"
		}
		timeRow, pruneRow := []string{name}, []string{name}
		for i := range sweep {
			k, qFrac, dt := mk(i)
			drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), seed+int64(i))
			var a agg
			for _, d := range drawsList {
				r, err := runExact(core.Options{}, ds, ds.Table, d, k, algo)
				if err != nil {
					return nil, err
				}
				a.addRun(r, eval.Metrics{})
			}
			timeRow = append(timeRow, fsec(a.avgSeconds()))
			pruneRow = append(pruneRow, fpct(a.avgPrune()))
		}
		timeT.Rows = append(timeT.Rows, timeRow)
		pruneT.Rows = append(pruneT.Rows, pruneRow)
	}
	timeT.Notes = []string{"expected shape: BF at or below NL except k→|Q|; BF pruning ≥ NL pruning"}
	return []Table{timeT, pruneT}, nil
}

// runFigure8: efficiency vs k.
func runFigure8(cfg *Config) ([]Table, error) {
	_, qFrac, dt := cfg.rdDefaults()
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sweep := make([]string, len(ks))
	for i, k := range ks {
		sweep[i] = fmt.Sprintf("k=%d", k)
	}
	return efficiencySweepRD(cfg, "F8", "RD analog", "k", sweep,
		func(i int) (int, float64, iupt.Time) { return ks[i], qFrac, dt },
		cfg.Seed+10)
}

// runFigure9: efficiency vs |Q|.
func runFigure9(cfg *Config) ([]Table, error) {
	k, _, dt := cfg.rdDefaults()
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	sweep := make([]string, len(fracs))
	for i, f := range fracs {
		sweep[i] = fmt.Sprintf("|Q|=%.0f%%", f*100)
	}
	return efficiencySweepRD(cfg, "F9", "RD analog", "|Q|", sweep,
		func(i int) (int, float64, iupt.Time) { return k, fracs[i], dt },
		cfg.Seed+20)
}

// runFigure10: efficiency vs Δt.
func runFigure10(cfg *Config) ([]Table, error) {
	k, qFrac, _ := cfg.rdDefaults()
	dts := cfg.rdParams().dts
	sweep := make([]string, len(dts))
	for i, dt := range dts {
		sweep[i] = fmt.Sprintf("Δt=%dm", dt/60)
	}
	return efficiencySweepRD(cfg, "F10", "RD analog", "Δt", sweep,
		func(i int) (int, float64, iupt.Time) { return k, qFrac, dts[i] },
		cfg.Seed+30)
}

// effectivenessSweepRD is the common body of Figures 11-13.
func effectivenessSweepRD(cfg *Config, id, param string, sweep []string,
	mk func(i int) (k int, qFrac float64, dt iupt.Time), seed int64) ([]Table, error) {

	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	tau := Table{
		ID:     id + "a",
		Title:  "Kendall tau vs " + param + " (RD analog)",
		Header: append([]string{"method"}, sweep...),
		Notes:  []string{"expected shape: BF highest throughout; SC/SC-rho far below; MC between"},
	}
	rec := Table{
		ID:     id + "b",
		Title:  "Recall vs " + param + " (RD analog)",
		Header: tau.Header,
	}
	for _, name := range []string{"BF", "SC", "SC-rho", "MC"} {
		tauRow, recRow := []string{name}, []string{name}
		for i := range sweep {
			k, qFrac, dt := mk(i)
			drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), seed+int64(i))
			var a agg
			for _, d := range drawsList {
				var r methodRun
				var err error
				if name == "BF" {
					r, err = runExact(core.Options{}, ds, ds.Table, d, k, core.AlgoBestFirst)
					if err != nil {
						return nil, err
					}
				} else {
					r = runBaseline(name, ds, ds.Table, d, k, cfg.mcRounds(), seed+int64(i)+1)
				}
				a.addRun(r, eval.Effectiveness(r.Res, truthTopK(ds, d, k)))
			}
			tauRow = append(tauRow, f3(a.avgTau()))
			recRow = append(recRow, f3(a.avgRecall()))
		}
		tau.Rows = append(tau.Rows, tauRow)
		rec.Rows = append(rec.Rows, recRow)
	}
	return []Table{tau, rec}, nil
}

// runFigure11: effectiveness vs k.
func runFigure11(cfg *Config) ([]Table, error) {
	_, qFrac, dt := cfg.rdDefaults()
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sweep := make([]string, len(ks))
	for i, k := range ks {
		sweep[i] = fmt.Sprintf("k=%d", k)
	}
	return effectivenessSweepRD(cfg, "F11", "k", sweep,
		func(i int) (int, float64, iupt.Time) { return ks[i], qFrac, dt },
		cfg.Seed+40)
}

// runFigure12: effectiveness vs |Q|.
func runFigure12(cfg *Config) ([]Table, error) {
	k, _, dt := cfg.rdDefaults()
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	sweep := make([]string, len(fracs))
	for i, f := range fracs {
		sweep[i] = fmt.Sprintf("|Q|=%.0f%%", f*100)
	}
	return effectivenessSweepRD(cfg, "F12", "|Q|", sweep,
		func(i int) (int, float64, iupt.Time) { return k, fracs[i], dt },
		cfg.Seed+50)
}

// runFigure13: effectiveness vs Δt.
func runFigure13(cfg *Config) ([]Table, error) {
	k, qFrac, _ := cfg.rdDefaults()
	dts := cfg.rdParams().dts
	sweep := make([]string, len(dts))
	for i, dt := range dts {
		sweep[i] = fmt.Sprintf("Δt=%dm", dt/60)
	}
	return effectivenessSweepRD(cfg, "F13", "Δt", sweep,
		func(i int) (int, float64, iupt.Time) { return k, qFrac, dts[i] },
		cfg.Seed+60)
}
