package experiments

import (
	"fmt"

	"tkplq/internal/baseline"
	"tkplq/internal/core"
	"tkplq/internal/eval"
	"tkplq/internal/sim"
)

// runTable7 reproduces Table 7: Kendall τ of SCC, UR and BF across k and
// |Q| on synthetic data with an RFID tracking substrate (readers at doors,
// 3 m non-overlapping ranges).
func runTable7(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	nObj := p.objects[defaultObjIdx]
	trajs := restrictTrajs(ds.Trajs, nObj)

	rfidCfg := sim.DefaultRFIDConfig()
	rfidCfg.Seed = cfg.Seed + 160
	dep, err := sim.DeployReaders(ds.Building, rfidCfg)
	if err != nil {
		return nil, err
	}
	recs := sim.GenerateRFID(ds.Building, dep, trajs, rfidCfg)

	ks := append([]int(nil), p.ks...)
	sortInts(ks)
	fracs := append([]float64(nil), p.qFracs...)
	sortFloats(fracs)
	_, _, dt := cfg.synDefaults()

	header := []string{"k"}
	for _, f := range fracs {
		for _, m := range []string{"SCC", "UR", "BF"} {
			header = append(header, fmt.Sprintf("%s@%.0f%%", m, f*100))
		}
	}
	tbl := Table{
		ID:     "T7",
		Title:  fmt.Sprintf("Kendall tau: SCC vs UR vs BF (SYN, %d readers, %d RFID records)", len(dep.Readers), len(recs)),
		Header: header,
		Notes: []string{
			"expected shape (paper Table 7): UR lowest everywhere; SCC competitive",
			"at small |Q| but degrading as |Q| grows; BF consistently high",
		},
	}

	urCfg := baseline.DefaultURConfig()
	for _, k := range ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, frac := range fracs {
			drawsList := makeDraws(ds, frac, dt, cfg.queries(), cfg.Seed+170+int64(k))
			var sccTau, urTau, bfTau float64
			for _, d := range drawsList {
				truth := cfg.synTruth(ds, d, k)

				sccFlows := baseline.SCC(ds.Building.Space, dep, recs, d.Q, d.ts, d.te)
				sccTau += eval.KendallTau(eval.TopKOf(sccFlows, k), truth)

				urFlows := baseline.UR(ds.Building.Space, dep, recs, d.Q, d.ts, d.te, urCfg)
				urTau += eval.KendallTau(eval.TopKOf(urFlows, k), truth)

				r, err := runExact(core.Options{}, ds, ds.Table, d, k, core.AlgoBestFirst)
				if err != nil {
					return nil, err
				}
				bfTau += eval.KendallTau(r.Res, truth)
			}
			n := float64(len(drawsList))
			row = append(row, f3(sccTau/n), f3(urTau/n), f3(bfTau/n))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return []Table{tbl}, nil
}

// runAblationEngines is ablation A1: path enumeration vs the DP engine on
// growing Δt, quantifying why the DP engine is the default.
func runAblationEngines(cfg *Config) ([]Table, error) {
	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	k, qFrac, _ := cfg.rdDefaults()
	dts := cfg.rdParams().dts

	cols := make([]string, len(dts))
	for i, dt := range dts {
		cols[i] = fmt.Sprintf("Δt=%dm", dt/60)
	}
	tbl := Table{
		ID:     "A1",
		Title:  "Ablation: enumeration vs DP engine, NL search (RD analog)",
		Header: append([]string{"engine"}, cols...),
		Notes: []string{
			"enum materializes the paper's path sets (budget-capped, falls back to DP);",
			"dp computes identical presences in polynomial time — see DESIGN.md §4",
		},
	}
	engines := []struct {
		name string
		opts core.Options
	}{
		{"enum", core.Options{Engine: core.EngineEnum}},
		{"dp", core.Options{Engine: core.EngineDP}},
	}
	fallbackRow := []string{"enum fallbacks"}
	pathsRow := []string{"enum paths"}
	for ei, eng := range engines {
		row := []string{eng.name}
		for i, dt := range dts {
			drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+180+int64(i))
			var a agg
			var fallbacks int
			var paths int64
			for _, d := range drawsList {
				r, err := runExact(eng.opts, ds, ds.Table, d, k, core.AlgoNestedLoop)
				if err != nil {
					return nil, err
				}
				a.addRun(r, eval.Metrics{})
				fallbacks += r.Stats.BudgetFallbacks
				paths += r.Stats.PathsEnumerated
			}
			row = append(row, fsec(a.avgSeconds()))
			if ei == 0 {
				fallbackRow = append(fallbackRow, fmt.Sprintf("%d", fallbacks))
				pathsRow = append(pathsRow, fmt.Sprintf("%d", paths))
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Rows = append(tbl.Rows, pathsRow, fallbackRow)
	return []Table{tbl}, nil
}

// runAblationReduction is ablation A2: the contribution of each reduction
// stage (none / intra only / inter only / full) to time, data volume and
// result agreement with the fully reduced run.
func runAblationReduction(cfg *Config) ([]Table, error) {
	ds, err := cfg.RealDataset()
	if err != nil {
		return nil, err
	}
	k, qFrac, dt := cfg.rdDefaults()
	drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+190)

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"intra-only", core.Options{DisableInterMerge: true}},
		{"inter-only", core.Options{DisableIntraMerge: true}},
		{"none (ORG)", core.Options{DisableReduction: true}},
	}
	tbl := Table{
		ID:     "A2",
		Title:  "Ablation: data reduction stages, NL search (RD analog)",
		Header: []string{"variant", "time", "sets kept", "pruning", "tau vs full"},
		Notes: []string{
			"sets kept = reduced/original sample sets; intra-merge is lossless,",
			"inter-merge trades exactness for volume (paper §3.2)",
		},
	}

	// Reference results from the full variant, per draw.
	var fullRes [][]core.Result
	for _, v := range variants {
		var a agg
		var kept, orig float64
		var tauVsFull float64
		for di, d := range drawsList {
			r, err := runExact(v.opts, ds, ds.Table, d, k, core.AlgoNestedLoop)
			if err != nil {
				return nil, err
			}
			a.addRun(r, eval.Metrics{})
			kept += float64(r.Stats.SampleSetsReduced)
			orig += float64(r.Stats.SampleSetsOriginal)
			if v.name == "full" {
				fullRes = append(fullRes, r.Res)
				tauVsFull += 1
			} else {
				tauVsFull += eval.KendallTau(r.Res, fullRes[di])
			}
		}
		ratio := "-"
		if orig > 0 {
			ratio = fpct(kept / orig)
		}
		tbl.Rows = append(tbl.Rows, []string{
			v.name, fsec(a.avgSeconds()), ratio, fpct(a.avgPrune()),
			f3(tauVsFull / float64(len(drawsList))),
		})
	}
	return []Table{tbl}, nil
}
