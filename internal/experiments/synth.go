package experiments

import (
	"fmt"

	"tkplq/internal/core"
	"tkplq/internal/eval"
	"tkplq/internal/iupt"
)

// synDataset returns the SYN dataset plus its default query shape.
func (c *Config) synDefaults() (k int, qFrac float64, dt iupt.Time) {
	p := c.synParams()
	return p.ks[0], p.qFracs[0], p.dts[0]
}

// synVariantTable returns the SYN IUPT for a given T and µ, restricted to
// the default object count.
func (c *Config) synVariantTable(ds *Dataset, t iupt.Time, mu float64) (*iupt.Table, error) {
	full, err := c.synIUPT(ds, t, mu)
	if err != nil {
		return nil, err
	}
	p := c.synParams()
	return restrictObjects(full, p.objects[defaultObjIdx]), nil
}

// synTruth computes ground truth restricted to the default object count.
func (c *Config) synTruth(ds *Dataset, d queryDraw, k int) []core.Result {
	p := c.synParams()
	trajs := restrictTrajs(ds.Trajs, p.objects[defaultObjIdx])
	flows := eval.GroundTruthFlows(ds.Building.Space, trajs, d.Q, d.ts, d.te)
	return eval.TopKOf(flows, k)
}

// runFigure14 reproduces Figure 14: running time vs T (a) and vs µ (b) for
// NL, BF, SC, SC-ρ and MC on synthetic data.
func runFigure14(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, qFrac, dt := cfg.synDefaults()

	mkTable := func(id, param string, cols []string) Table {
		return Table{
			ID:     id,
			Title:  "Running time vs " + param + " (SYN)",
			Header: append([]string{"method"}, cols...),
			Notes:  []string{"expected shape: NL/BF drop as " + param + " grows; MC dominates all costs"},
		}
	}
	tCols := make([]string, len(p.ts))
	for i, t := range p.ts {
		tCols[i] = fmt.Sprintf("T=%ds", t)
	}
	muCols := make([]string, len(p.mus))
	for i, mu := range p.mus {
		muCols[i] = fmt.Sprintf("µ=%gm", mu)
	}
	ta := mkTable("F14a", "T", tCols)
	tb := mkTable("F14b", "µ", muCols)

	methods := []string{"NL", "BF", "SC", "SC-rho", "MC"}
	run := func(name string, table *iupt.Table, d queryDraw) (methodRun, error) {
		switch name {
		case "NL":
			return runExact(core.Options{}, ds, table, d, k, core.AlgoNestedLoop)
		case "BF":
			return runExact(core.Options{}, ds, table, d, k, core.AlgoBestFirst)
		default:
			return runBaseline(name, ds, table, d, k, cfg.mcRounds(), cfg.Seed+71), nil
		}
	}

	for _, name := range methods {
		rowT := []string{name}
		for i, t := range p.ts {
			table, err := cfg.synVariantTable(ds, t, 5)
			if err != nil {
				return nil, err
			}
			drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+70+int64(i))
			var a agg
			for _, d := range drawsList {
				r, err := run(name, table, d)
				if err != nil {
					return nil, err
				}
				a.addRun(r, eval.Metrics{})
			}
			rowT = append(rowT, fsec(a.avgSeconds()))
		}
		ta.Rows = append(ta.Rows, rowT)

		rowMu := []string{name}
		for i, mu := range p.mus {
			table, err := cfg.synVariantTable(ds, 3, mu)
			if err != nil {
				return nil, err
			}
			drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+80+int64(i))
			var a agg
			for _, d := range drawsList {
				r, err := run(name, table, d)
				if err != nil {
					return nil, err
				}
				a.addRun(r, eval.Metrics{})
			}
			rowMu = append(rowMu, fsec(a.avgSeconds()))
		}
		tb.Rows = append(tb.Rows, rowMu)
	}
	return []Table{ta, tb}, nil
}

// effectivenessSweepSYN is the shared body of Figures 15, 16, 18, 19, 21:
// τ and recall of BF, SC, SC-ρ, MC across one swept parameter.
func effectivenessSweepSYN(cfg *Config, id, param string, sweep []string,
	variant func(i int) (*iupt.Table, queryShape, error), seed int64) ([]Table, error) {

	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	tau := Table{
		ID:     id + "a",
		Title:  "Kendall tau vs " + param + " (SYN)",
		Header: append([]string{"method"}, sweep...),
		Notes:  []string{"expected shape: BF best throughout; SC/SC-rho degrade fastest"},
	}
	rec := Table{
		ID:     id + "b",
		Title:  "Recall vs " + param + " (SYN)",
		Header: tau.Header,
	}
	for _, name := range []string{"BF", "SC", "SC-rho", "MC"} {
		tauRow, recRow := []string{name}, []string{name}
		for i := range sweep {
			table, shape, err := variant(i)
			if err != nil {
				return nil, err
			}
			drawsList := makeDraws(ds, shape.qFrac, shape.dt, cfg.queries(), seed+int64(i))
			var a agg
			for _, d := range drawsList {
				var r methodRun
				if name == "BF" {
					r, err = runExact(core.Options{}, ds, table, d, shape.k, core.AlgoBestFirst)
					if err != nil {
						return nil, err
					}
				} else {
					r = runBaseline(name, ds, table, d, shape.k, cfg.mcRounds(), seed+int64(i)+1)
				}
				truth := shape.truth(d, shape.k)
				a.addRun(r, eval.Effectiveness(r.Res, truth))
			}
			tauRow = append(tauRow, f3(a.avgTau()))
			recRow = append(recRow, f3(a.avgRecall()))
		}
		tau.Rows = append(tau.Rows, tauRow)
		rec.Rows = append(rec.Rows, recRow)
	}
	return []Table{tau, rec}, nil
}

// queryShape bundles one sweep point's query parameters and ground-truth
// scoring (which may restrict the object population).
type queryShape struct {
	k     int
	qFrac float64
	dt    iupt.Time
	truth func(d queryDraw, k int) []core.Result
}

// runFigure15: effectiveness vs T.
func runFigure15(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, qFrac, dt := cfg.synDefaults()
	sweep := make([]string, len(p.ts))
	for i, t := range p.ts {
		sweep[i] = fmt.Sprintf("T=%ds", t)
	}
	return effectivenessSweepSYN(cfg, "F15", "T", sweep, func(i int) (*iupt.Table, queryShape, error) {
		table, err := cfg.synVariantTable(ds, p.ts[i], 5)
		return table, queryShape{k: k, qFrac: qFrac, dt: dt,
			truth: func(d queryDraw, k int) []core.Result { return cfg.synTruth(ds, d, k) }}, err
	}, cfg.Seed+90)
}

// runFigure16: effectiveness vs µ.
func runFigure16(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, qFrac, dt := cfg.synDefaults()
	sweep := make([]string, len(p.mus))
	for i, mu := range p.mus {
		sweep[i] = fmt.Sprintf("µ=%gm", mu)
	}
	return effectivenessSweepSYN(cfg, "F16", "µ", sweep, func(i int) (*iupt.Table, queryShape, error) {
		table, err := cfg.synVariantTable(ds, 3, p.mus[i])
		return table, queryShape{k: k, qFrac: qFrac, dt: dt,
			truth: func(d queryDraw, k int) []core.Result { return cfg.synTruth(ds, d, k) }}, err
	}, cfg.Seed+100)
}

// runFigure17 reproduces Figure 17: running time vs |O| for NL, BF, SC,
// SC-ρ and MC.
func runFigure17(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, qFrac, dt := cfg.synDefaults()
	full, err := cfg.synIUPT(ds, 3, 5)
	if err != nil {
		return nil, err
	}

	cols := make([]string, len(p.objects))
	for i, n := range p.objects {
		cols[i] = fmt.Sprintf("|O|=%d", n)
	}
	tbl := Table{
		ID:     "F17",
		Title:  "Running time vs |O| (SYN)",
		Header: append([]string{"method"}, cols...),
		Notes:  []string{"expected shape: every method grows with |O|; BF < NL; MC far above"},
	}
	for _, name := range []string{"NL", "BF", "SC", "SC-rho", "MC"} {
		row := []string{name}
		for i, n := range p.objects {
			table := restrictObjects(full, n)
			drawsList := makeDraws(ds, qFrac, dt, cfg.queries(), cfg.Seed+110+int64(i))
			var a agg
			for _, d := range drawsList {
				var r methodRun
				switch name {
				case "NL":
					r, err = runExact(core.Options{}, ds, table, d, k, core.AlgoNestedLoop)
				case "BF":
					r, err = runExact(core.Options{}, ds, table, d, k, core.AlgoBestFirst)
				default:
					r = runBaseline(name, ds, table, d, k, cfg.mcRounds(), cfg.Seed+111)
				}
				if err != nil {
					return nil, err
				}
				a.addRun(r, eval.Metrics{})
			}
			row = append(row, fsec(a.avgSeconds()))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return []Table{tbl}, nil
}

// runFigure18: effectiveness vs k.
func runFigure18(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	_, qFrac, dt := cfg.synDefaults()
	ks := append([]int(nil), p.ks...)
	sortInts(ks)
	sweep := make([]string, len(ks))
	for i, k := range ks {
		sweep[i] = fmt.Sprintf("k=%d", k)
	}
	return effectivenessSweepSYN(cfg, "F18", "k", sweep, func(i int) (*iupt.Table, queryShape, error) {
		return ds.Table, queryShape{k: ks[i], qFrac: qFrac, dt: dt,
			truth: func(d queryDraw, k int) []core.Result { return cfg.synTruth(ds, d, k) }}, nil
	}, cfg.Seed+120)
}

// runFigure19: effectiveness vs |Q|.
func runFigure19(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, _, dt := cfg.synDefaults()
	fracs := append([]float64(nil), p.qFracs...)
	sortFloats(fracs)
	sweep := make([]string, len(fracs))
	for i, f := range fracs {
		sweep[i] = fmt.Sprintf("|Q|=%.0f%%", f*100)
	}
	return effectivenessSweepSYN(cfg, "F19", "|Q|", sweep, func(i int) (*iupt.Table, queryShape, error) {
		return ds.Table, queryShape{k: k, qFrac: fracs[i], dt: dt,
			truth: func(d queryDraw, k int) []core.Result { return cfg.synTruth(ds, d, k) }}, nil
	}, cfg.Seed+130)
}

// runFigure20: effectiveness vs |O|.
func runFigure20(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, qFrac, dt := cfg.synDefaults()
	full, err := cfg.synIUPT(ds, 3, 5)
	if err != nil {
		return nil, err
	}
	sweep := make([]string, len(p.objects))
	for i, n := range p.objects {
		sweep[i] = fmt.Sprintf("|O|=%d", n)
	}
	return effectivenessSweepSYN(cfg, "F20", "|O|", sweep, func(i int) (*iupt.Table, queryShape, error) {
		n := p.objects[i]
		return restrictObjects(full, n), queryShape{k: k, qFrac: qFrac, dt: dt,
			truth: func(d queryDraw, k int) []core.Result {
				flows := eval.GroundTruthFlows(ds.Building.Space, restrictTrajs(ds.Trajs, n), d.Q, d.ts, d.te)
				return eval.TopKOf(flows, k)
			}}, nil
	}, cfg.Seed+140)
}

// runFigure21: effectiveness vs Δt.
func runFigure21(cfg *Config) ([]Table, error) {
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		return nil, err
	}
	p := cfg.synParams()
	k, qFrac, _ := cfg.synDefaults()
	dts := append([]iupt.Time(nil), p.dts...)
	sortTimes(dts)
	sweep := make([]string, len(dts))
	for i, dt := range dts {
		sweep[i] = fmt.Sprintf("Δt=%dm", dt/60)
	}
	return effectivenessSweepSYN(cfg, "F21", "Δt", sweep, func(i int) (*iupt.Table, queryShape, error) {
		return ds.Table, queryShape{k: k, qFrac: qFrac, dt: dts[i],
			truth: func(d queryDraw, k int) []core.Result { return cfg.synTruth(ds, d, k) }}, nil
	}, cfg.Seed+150)
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func sortTimes(v []iupt.Time) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
