package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tkplq/internal/baseline"
	"tkplq/internal/core"
	"tkplq/internal/eval"
	"tkplq/internal/indoor"
	"tkplq/internal/iupt"
)

// queryDraw is one random TkPLQ instance: a query set and a time interval,
// mirroring the paper's random query generation (§5.2: random |Q| fraction
// of S-locations, random ts for a given Δt).
type queryDraw struct {
	Q      []indoor.SLocID
	ts, te iupt.Time
}

// makeDraws produces n random query instances over the dataset span.
func makeDraws(ds *Dataset, qFrac float64, dt iupt.Time, n int, seed int64) []queryDraw {
	rng := rand.New(rand.NewSource(seed))
	total := ds.Building.Space.NumSLocations()
	qSize := int(float64(total)*qFrac + 0.5)
	if qSize < 1 {
		qSize = 1
	}
	if qSize > total {
		qSize = total
	}
	out := make([]queryDraw, n)
	for i := range out {
		perm := rng.Perm(total)[:qSize]
		q := make([]indoor.SLocID, qSize)
		for j, p := range perm {
			q[j] = indoor.SLocID(p)
		}
		maxStart := ds.Span - dt
		var ts iupt.Time
		if maxStart > 0 {
			ts = iupt.Time(rng.Int63n(int64(maxStart)))
		}
		out[i] = queryDraw{Q: q, ts: ts, te: ts + dt}
	}
	return out
}

// methodRun is one measured query execution.
type methodRun struct {
	Seconds float64
	Stats   core.Stats
	Res     []core.Result
}

// runExact times one TkPLQ execution of the exact engine through the
// context-aware Do API (so canceling Config.Ctx aborts mid-query). A fresh
// engine per draw keeps the presence cache cold, and the worker pool
// defaults to 1 (not GOMAXPROCS) unless Config.Workers opts in — so
// recorded times stay comparable with the paper's single-threaded
// evaluation and with numbers measured before the sharded engine existed.
func runExact(opts core.Options, ds *Dataset, table *iupt.Table, d queryDraw, k int, algo core.Algorithm) (methodRun, error) {
	if opts.Workers == 0 {
		opts.Workers = ds.Workers
	}
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	eng := core.NewEngine(ds.Building.Space, opts)
	start := time.Now()
	resp, err := eng.Do(ds.ctx(), table, core.Query{
		Kind: core.KindTopK, Algorithm: algo, K: k, Ts: d.ts, Te: d.te, SLocs: d.Q,
	})
	if err != nil {
		return methodRun{}, err
	}
	return methodRun{Seconds: time.Since(start).Seconds(), Stats: resp.Stats, Res: resp.Results}, nil
}

// runBaseline times one baseline execution, ranking its flow map.
func runBaseline(name string, ds *Dataset, table *iupt.Table, d queryDraw, k int, mcRounds int, seed int64) methodRun {
	start := time.Now()
	var flows map[indoor.SLocID]float64
	switch name {
	case "SC":
		flows = baseline.SC(ds.Building.Space, table, d.Q, d.ts, d.te)
	case "SC-rho":
		flows = baseline.SCRho(ds.Building.Space, table, d.Q, d.ts, d.te, 0.25)
	case "MC":
		flows = baseline.MC(ds.Building.Space, table, d.Q, d.ts, d.te,
			baseline.MCConfig{Rounds: mcRounds, Seed: seed})
	default:
		panic("experiments: unknown baseline " + name)
	}
	res := eval.TopKOf(flows, k)
	return methodRun{Seconds: time.Since(start).Seconds(), Res: res}
}

// truthTopK ranks the ground-truth flows of a draw.
func truthTopK(ds *Dataset, d queryDraw, k int) []core.Result {
	flows := eval.GroundTruthFlows(ds.Building.Space, ds.Trajs, d.Q, d.ts, d.te)
	return eval.TopKOf(flows, k)
}

// agg accumulates per-draw measurements of one method.
type agg struct {
	n       int
	seconds float64
	prune   float64
	tau     float64
	recall  float64
	breaks  float64
	paths   float64
}

func (a *agg) addRun(r methodRun, m eval.Metrics) {
	a.n++
	a.seconds += r.Seconds
	a.prune += r.Stats.PruningRatio()
	a.tau += m.Tau
	a.recall += m.Recall
	a.breaks += float64(r.Stats.SequenceBreaks)
	a.paths += float64(r.Stats.PathsEnumerated)
}

func (a *agg) avgSeconds() float64 { return a.seconds / float64(max(a.n, 1)) }
func (a *agg) avgPrune() float64   { return a.prune / float64(max(a.n, 1)) }
func (a *agg) avgTau() float64     { return a.tau / float64(max(a.n, 1)) }
func (a *agg) avgRecall() float64  { return a.recall / float64(max(a.n, 1)) }

func fsec(s float64) string {
	switch {
	case s < 0.001:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func fpct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
