package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func smallConfig() *Config {
	return &Config{Scale: Small, Queries: 1, MCRounds: 5, Seed: 17}
}

// TestAllExperimentsRun executes every experiment at Small scale, sharing
// one dataset cache, and sanity-checks the emitted tables.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow; skipped with -short")
	}
	cfg := smallConfig()
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tables, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" {
					t.Errorf("%s: table missing id/title", exp.ID)
				}
				if len(tbl.Header) < 2 || len(tbl.Rows) == 0 {
					t.Errorf("%s/%s: empty table", exp.ID, tbl.ID)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s/%s: row width %d != header %d", exp.ID, tbl.ID, len(row), len(tbl.Header))
					}
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Errorf("%s/%s render: %v", exp.ID, tbl.ID, err)
				}
				if !strings.Contains(buf.String(), tbl.ID) {
					t.Errorf("%s/%s: render missing id", exp.ID, tbl.ID)
				}
			}
		})
	}
}

// TestTauCellsInRange parses every τ cell of the effectiveness tables and
// checks it lies in [-1, 1].
func TestTauCellsInRange(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipped with -short")
	}
	cfg := smallConfig()
	tables, err := runFigure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range tables {
		for _, row := range tbl.Rows {
			for _, cell := range row[1:] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					t.Fatalf("cell %q not numeric: %v", cell, err)
				}
				if v < -1-1e-9 || v > 1+1e-9 {
					t.Errorf("metric %v out of [-1, 1]", v)
				}
			}
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"small", Small, true},
		{"MEDIUM", Medium, true},
		{"Paper", Paper, true},
		{"huge", 0, false},
	} {
		got, err := ParseScale(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
	if Small.String() != "small" || Medium.String() != "medium" || Paper.String() != "paper" {
		t.Error("Scale.String broken")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("t4"); !ok {
		t.Error("ByID should be case-insensitive")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should miss")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All mismatch")
	}
}

func TestDatasetCacheReuse(t *testing.T) {
	cfg := smallConfig()
	a, err := cfg.RealDataset()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.RealDataset()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("RealDataset should be cached per Config")
	}
	s1, err := cfg.SyntheticDataset()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cfg.SyntheticDataset()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("SyntheticDataset should be cached per Config")
	}
}

func TestRestrictObjects(t *testing.T) {
	cfg := smallConfig()
	ds, err := cfg.SyntheticDataset()
	if err != nil {
		t.Fatal(err)
	}
	full, err := cfg.synIUPT(ds, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	small := restrictObjects(full, 5)
	for i := 0; i < small.Len(); i++ {
		if small.Record(i).OID > 5 {
			t.Fatalf("object %d leaked through restriction", small.Record(i).OID)
		}
	}
	if small.Len() >= full.Len() {
		t.Error("restriction should drop records")
	}
	trajs := restrictTrajs(ds.Trajs, 5)
	if len(trajs) != 5 {
		t.Errorf("restricted trajectories = %d", len(trajs))
	}
}

func TestMakeDraws(t *testing.T) {
	cfg := smallConfig()
	ds, err := cfg.RealDataset()
	if err != nil {
		t.Fatal(err)
	}
	ds2 := makeDraws(ds, 0.5, 600, 4, 9)
	if len(ds2) != 4 {
		t.Fatalf("draws = %d", len(ds2))
	}
	for _, d := range ds2 {
		if len(d.Q) != 7 { // 50% of 14
			t.Errorf("|Q| = %d, want 7", len(d.Q))
		}
		if d.te-d.ts != 600 {
			t.Errorf("Δt = %d", d.te-d.ts)
		}
		if d.ts < 0 || d.te > ds.Span {
			t.Errorf("interval [%d,%d] outside span", d.ts, d.te)
		}
		seen := map[int32]bool{}
		for _, q := range d.Q {
			if seen[int32(q)] {
				t.Error("duplicate S-location in draw")
			}
			seen[int32(q)] = true
		}
	}
	// Determinism.
	again := makeDraws(ds, 0.5, 600, 4, 9)
	for i := range ds2 {
		if ds2[i].ts != again[i].ts || len(ds2[i].Q) != len(again[i].Q) {
			t.Error("draws should be deterministic per seed")
		}
	}
}
