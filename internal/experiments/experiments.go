// Package experiments regenerates every table and figure of the paper's
// evaluation section (§5) on simulated datasets: the real-data analog (RD,
// §5.2) and the Vita-like synthetic building (SYN, §5.3). Each experiment
// is addressable by the paper artifact id (T4, T5, F7..F21, T7) plus two
// ablations (A1: enumeration vs DP engine; A2: reduction stages).
//
// Experiments run at three scales: Small (unit tests and `go test -bench`),
// Medium (cmd/experiments default; paper-like RD, reduced SYN), and Paper
// (full published parameters; minutes to hours). Scales change data volume,
// never code paths, so result *shapes* are comparable throughout.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Scale selects the data volume.
type Scale int

// Scales.
const (
	Small Scale = iota
	Medium
	Paper
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want small, medium or paper)", s)
	}
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	default:
		return "small"
	}
}

// Config drives an experiment run.
type Config struct {
	// Ctx, when non-nil, bounds every measured query evaluation: canceling
	// it (e.g. on SIGINT) aborts the experiment mid-query via the engine's
	// context plumbing instead of waiting the evaluation out.
	Ctx context.Context
	// Scale selects dataset sizes; see Scale.
	Scale Scale
	// Queries is how many random (query set, interval) draws each data
	// point averages over (the paper issues 15-20 random queries).
	// 0 selects a scale-appropriate default.
	Queries int
	// MCRounds overrides the Monte-Carlo round count (0 = scale default).
	MCRounds int
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds each engine's worker pool (core.Options.Workers):
	// 0 = GOMAXPROCS, 1 = single-threaded. Results are identical at every
	// setting; only measured wall-clock changes.
	Workers int

	cache *datasetCache
}

func (c *Config) queries() int {
	if c.Queries > 0 {
		return c.Queries
	}
	switch c.Scale {
	case Paper:
		return 5
	case Medium:
		return 5
	default:
		return 2
	}
}

func (c *Config) mcRounds() int {
	if c.MCRounds > 0 {
		return c.MCRounds
	}
	switch c.Scale {
	case Paper:
		return 200
	case Medium:
		return 100
	default:
		return 25
	}
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries per-table remarks (e.g. expected shape from the
	// paper).
	Notes []string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	if err := writeRow(separators(widths)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func separators(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Experiment is a runnable evaluation artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg *Config) ([]Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"T4", "Performance comparison in default setting (RD)", runTable4},
		{"T5", "Efficiency vs mss (RD)", runTable5},
		{"F7", "Effectiveness vs mss (RD)", runFigure7},
		{"F8", "Efficiency vs k (RD)", runFigure8},
		{"F9", "Efficiency vs |Q| (RD)", runFigure9},
		{"F10", "Efficiency vs Δt (RD)", runFigure10},
		{"F11", "Effectiveness vs k (RD)", runFigure11},
		{"F12", "Effectiveness vs |Q| (RD)", runFigure12},
		{"F13", "Effectiveness vs Δt (RD)", runFigure13},
		{"F14", "Efficiency vs T and µ (SYN)", runFigure14},
		{"F15", "Effectiveness vs T (SYN)", runFigure15},
		{"F16", "Effectiveness vs µ (SYN)", runFigure16},
		{"F17", "Efficiency vs |O| (SYN)", runFigure17},
		{"F18", "Effectiveness vs k (SYN)", runFigure18},
		{"F19", "Effectiveness vs |Q| (SYN)", runFigure19},
		{"F20", "Effectiveness vs |O| (SYN)", runFigure20},
		{"F21", "Effectiveness vs Δt (SYN)", runFigure21},
		{"T7", "Kendall comparison with RFID methods (SYN)", runTable7},
		{"A1", "Ablation: enumeration vs DP engine", runAblationEngines},
		{"A2", "Ablation: data reduction stages", runAblationReduction},
	}
}

// ByID looks an experiment up by its (case-insensitive) id.
func ByID(id string) (Experiment, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// sortedKeys returns map keys in ascending order (generic helper for
// deterministic iteration).
func sortedKeys[K int | int64 | float64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
