package experiments

import (
	"context"
	"fmt"

	"tkplq/internal/iupt"
	"tkplq/internal/sim"
)

// Dataset bundles a building, ground-truth trajectories and the derived
// IUPT plus the generation parameters, so experiments can re-derive
// variants (different mss, T, µ) from the same ground truth.
type Dataset struct {
	Name     string
	Building *sim.Building
	Trajs    []sim.Trajectory
	Table    *iupt.Table
	MoveCfg  sim.MovementConfig
	PosCfg   sim.PositioningConfig

	// Span is the simulated duration in seconds.
	Span iupt.Time
	// Workers is the engine worker-pool setting applied to every measured
	// query over this dataset (0 = GOMAXPROCS); see Config.Workers.
	Workers int
	// Ctx bounds every measured evaluation over this dataset; nil means
	// Background. See Config.Ctx.
	Ctx context.Context
}

// ctx returns the dataset's evaluation context, defaulting to Background.
func (ds *Dataset) ctx() context.Context {
	if ds.Ctx != nil {
		return ds.Ctx
	}
	return context.Background()
}

// rdParams are the real-data analog generation parameters per scale
// (paper §5.2: 35 users, 150 min, T = 3 s, mss = 4, ~2.1 m error).
type rdParams struct {
	objects  int
	duration iupt.Time
	mu       float64
	// dts are the Δt sweep values (seconds); dts[0] is the default Δt.
	dts []iupt.Time
}

func (c *Config) rdParams() rdParams {
	switch c.Scale {
	case Paper, Medium:
		return rdParams{objects: 35, duration: 9000, mu: 2.1,
			dts: []iupt.Time{1800, 3600, 5400}}
	default:
		return rdParams{objects: 15, duration: 2700, mu: 2.1,
			dts: []iupt.Time{420, 900, 1500}}
	}
}

// synParams are the synthetic dataset parameters per scale (paper §5.3:
// 5-floor 120x120 building, 2.5K..10K objects, 2 h span, T = 3, µ = 5).
type synParams struct {
	building sim.BuildingConfig
	objects  []int // sweep; objects[defaultObjIdx] is the default
	duration iupt.Time
	ts       []iupt.Time // T sweep (first = default handled by pos cfg)
	mus      []float64
	dts      []iupt.Time // Δt sweep; dts[0] default
	ks       []int       // k sweep; ks[0] default
	qFracs   []float64   // |Q| fractions; qFracs[0] default
}

const defaultObjIdx = 1

func (c *Config) synParams() synParams {
	switch c.Scale {
	case Paper:
		return synParams{
			building: sim.PaperScaleBuildingConfig(),
			objects:  []int{2500, 5000, 7500, 10000},
			duration: 7200,
			ts:       []iupt.Time{1, 3, 5, 7},
			mus:      []float64{3, 5, 7},
			dts:      []iupt.Time{1800, 900, 3600, 7200},
			ks:       []int{10, 5, 15, 20},
			qFracs:   []float64{0.08, 0.04, 0.12},
		}
	case Medium:
		b := sim.DefaultBuildingConfig()
		b.Floors = 3
		b.RoomsPerRow = 4
		return synParams{
			building: b,
			objects:  []int{100, 200, 300, 400},
			duration: 7200,
			ts:       []iupt.Time{1, 3, 5, 7},
			mus:      []float64{3, 5, 7},
			dts:      []iupt.Time{1800, 900, 3600, 7200},
			ks:       []int{10, 5, 15, 20},
			qFracs:   []float64{0.08, 0.04, 0.12},
		}
	default:
		return synParams{
			building: sim.DefaultBuildingConfig(),
			objects:  []int{10, 20, 30, 40},
			duration: 2400,
			ts:       []iupt.Time{1, 3, 5, 7},
			mus:      []float64{3, 5, 7},
			dts:      []iupt.Time{600, 300, 1200, 2400},
			ks:       []int{5, 3, 10, 15},
			qFracs:   []float64{0.20, 0.10, 0.30},
		}
	}
}

// datasetCache memoizes generated datasets within one Config so multiple
// experiments share the expensive simulation work.
type datasetCache struct {
	rd       *Dataset
	syn      *Dataset
	synIUPTs map[string]*iupt.Table
}

func (c *Config) ensureCache() *datasetCache {
	if c.cache == nil {
		c.cache = &datasetCache{synIUPTs: make(map[string]*iupt.Table)}
	}
	return c.cache
}

// RealDataset builds (and caches) the RD analog.
func (c *Config) RealDataset() (*Dataset, error) {
	cache := c.ensureCache()
	if cache.rd != nil {
		return cache.rd, nil
	}
	p := c.rdParams()
	b, err := sim.RealDataFloor()
	if err != nil {
		return nil, err
	}
	moveCfg := sim.MovementConfig{
		Objects:     p.objects,
		Duration:    p.duration,
		MaxSpeed:    1.0,
		MinDwell:    120,
		MaxDwell:    600,
		MinLifespan: p.duration / 2,
		MaxLifespan: p.duration,
		Seed:        c.Seed + 101,
	}
	trajs, err := sim.SimulateMovement(b, moveCfg)
	if err != nil {
		return nil, err
	}
	posCfg := sim.PositioningConfig{
		MaxPeriod: 3, MSS: 4, ErrorRadius: p.mu, Gamma: 0.2, Seed: c.Seed + 102,
	}
	table, err := sim.GenerateIUPT(b, trajs, posCfg)
	if err != nil {
		return nil, err
	}
	warmIndex(table)
	cache.rd = &Dataset{
		Name: "RD", Building: b, Trajs: trajs, Table: table,
		MoveCfg: moveCfg, PosCfg: posCfg, Span: p.duration,
		Workers: c.Workers, Ctx: c.Ctx,
	}
	return cache.rd, nil
}

// warmIndex forces the lazy 1-D R-tree build so measured query times do not
// include one-off index construction.
func warmIndex(t *iupt.Table) {
	t.RangeQuery(0, 0, func(iupt.Record) bool { return false })
}

// SyntheticDataset builds (and caches) the SYN dataset at the default
// object count with default positioning (T = 3, µ = 5, mss = 4).
func (c *Config) SyntheticDataset() (*Dataset, error) {
	cache := c.ensureCache()
	if cache.syn != nil {
		return cache.syn, nil
	}
	p := c.synParams()
	b, err := sim.Generate(p.building)
	if err != nil {
		return nil, err
	}
	moveCfg := sim.MovementConfig{
		Objects:     p.objects[len(p.objects)-1], // simulate the maximum once
		Duration:    p.duration,
		MaxSpeed:    1.0,
		MinDwell:    300,
		MaxDwell:    1800,
		MinLifespan: p.duration / 4,
		MaxLifespan: p.duration,
		Seed:        c.Seed + 201,
	}
	trajs, err := sim.SimulateMovement(b, moveCfg)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Name: "SYN", Building: b, Trajs: trajs,
		MoveCfg: moveCfg, Span: p.duration,
		Workers: c.Workers, Ctx: c.Ctx,
	}
	table, err := c.synIUPT(ds, 3, 5)
	if err != nil {
		return nil, err
	}
	ds.Table = restrictObjects(table, p.objects[defaultObjIdx])
	ds.PosCfg = sim.PositioningConfig{MaxPeriod: 3, MSS: 4, ErrorRadius: 5, Gamma: 0.2, Seed: c.Seed + 202}
	cache.syn = ds
	return ds, nil
}

// synIUPT generates (and caches) an IUPT over the full SYN trajectory set
// for a given positioning period T and error µ.
func (c *Config) synIUPT(ds *Dataset, t iupt.Time, mu float64) (*iupt.Table, error) {
	cache := c.ensureCache()
	key := fmt.Sprintf("T=%d,mu=%g", t, mu)
	if tb, ok := cache.synIUPTs[key]; ok {
		return tb, nil
	}
	posCfg := sim.PositioningConfig{
		MaxPeriod: t, MSS: 4, ErrorRadius: mu, Gamma: 0.2, Seed: c.Seed + 202,
	}
	tb, err := sim.GenerateIUPT(ds.Building, ds.Trajs, posCfg)
	if err != nil {
		return nil, err
	}
	warmIndex(tb)
	cache.synIUPTs[key] = tb
	return tb, nil
}

// restrictObjects filters the table down to objects with id <= n. Objects
// are simulated independently, so the prefix of a larger fleet is exactly
// the fleet a smaller simulation would have produced.
func restrictObjects(t *iupt.Table, n int) *iupt.Table {
	out := iupt.NewTable()
	for i := 0; i < t.Len(); i++ {
		rec := t.Record(i)
		if int(rec.OID) <= n {
			out.Append(rec)
		}
	}
	warmIndex(out)
	return out
}

// restrictTrajs filters trajectories to objects with id <= n.
func restrictTrajs(trajs []sim.Trajectory, n int) []sim.Trajectory {
	var out []sim.Trajectory
	for _, tr := range trajs {
		if int(tr.OID) <= n {
			out = append(out, tr)
		}
	}
	return out
}
