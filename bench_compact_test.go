package tkplq_test

// Benchmarks for the sealed-window summary cache: the same fully-sealed
// window evaluated cold (caches bypassed, the partitioned store's
// rematerialize + reduce + summarize path every time) versus cached
// (repeated windows served from the sealed-window and presence caches).
// bench/baseline.json records both; the gap is the cache's value, the
// benchdiff gate keeps it from silently eroding.

import (
	"context"
	"testing"

	"tkplq"
)

func BenchmarkSealedWindowQuery(b *testing.B) {
	// A denser world than the correctness tests use: the cache's win is in
	// skipping per-record rematerialize + reduce work, so the workload needs
	// enough sealed records for that to dominate the fixed per-query cost.
	bld, err := tkplq.GenerateBuilding(tkplq.DefaultBuildingConfig())
	if err != nil {
		b.Fatal(err)
	}
	trajs, err := tkplq.SimulateMovement(bld, tkplq.MovementConfig{
		Objects: 24, Duration: 600, MaxSpeed: 1.0,
		MinDwell: 60, MaxDwell: 240,
		MinLifespan: 300, MaxLifespan: 600,
		Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	seedTable, err := tkplq.GenerateIUPT(bld, trajs, tkplq.PositioningConfig{
		MaxPeriod: 1, MSS: 8, ErrorRadius: 10, Gamma: 0.2, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	store, recovered, err := tkplq.OpenPartitioned(tkplq.PartitionedOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	sys, err := tkplq.NewSystem(bld.Space, recovered, tkplq.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sys.SetPersister(store)
	// Ingest in six chunks, sealing after each: six partitions, empty head,
	// so [0,700] is a pure sealed window.
	recs := seedTable.SortedRecords()
	for len(recs) > 0 {
		n := min(len(recs), (len(seedTable.SortedRecords())+5)/6)
		if err := sys.Ingest(recs[:n]); err != nil {
			b.Fatal(err)
		}
		if err := sys.Snapshot(); err != nil {
			b.Fatal(err)
		}
		recs = recs[n:]
	}
	q := tkplq.Query{Kind: tkplq.KindTopK, Algorithm: tkplq.BestFirst, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		qc := q
		qc.DisableCache = true
		for i := 0; i < b.N; i++ {
			if _, err := sys.Do(context.Background(), qc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := sys.Do(context.Background(), q); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Do(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
