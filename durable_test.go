package tkplq_test

// Crash/restart determinism: a daemon's table recovered from snapshot + WAL
// replay must answer queries bit-identically to the table that never
// restarted — the contract behind tkplqd -data-dir. The test simulates a
// kill -9 (the store is abandoned, never Closed), tears the final WAL frame
// the way a mid-append crash would, recovers, and compares rankings AND
// flows with == on every float64, concurrently under the race detector.

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tkplq"
)

// copyDataDir clones a data directory into a fresh temp dir, as the
// filesystem a restarted process would recover (the advisory LOCK file is
// skipped — a real crash releases the flock with the process).
func copyDataDir(t *testing.T, dir string) string {
	t.Helper()
	out := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "LOCK" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(out, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// durableTestBuilding regenerates the deterministic small synthetic world
// shared by all systems in this test; identical seeds yield identical
// buildings and tables.
func durableTestBuilding(t testing.TB) (*tkplq.Building, *tkplq.Table) {
	t.Helper()
	b, err := tkplq.GenerateBuilding(tkplq.DefaultBuildingConfig())
	if err != nil {
		t.Fatal(err)
	}
	trajs, err := tkplq.SimulateMovement(b, tkplq.MovementConfig{
		Objects: 6, Duration: 600, MaxSpeed: 1.0,
		MinDwell: 60, MaxDwell: 240,
		MinLifespan: 300, MaxLifespan: 600,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := tkplq.GenerateIUPT(b, trajs, tkplq.PositioningConfig{
		MaxPeriod: 3, MSS: 4, ErrorRadius: 5, Gamma: 0.2, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b, table
}

// ingestBatches builds ten valid 3-record batches with distinct objects and
// fresh timestamps past the generated span.
func ingestBatches(numPLocs int) [][]tkplq.Record {
	batches := make([][]tkplq.Record, 10)
	for i := range batches {
		recs := make([]tkplq.Record, 3)
		for j := range recs {
			p1 := tkplq.PLocID((i*3 + j) % numPLocs)
			p2 := tkplq.PLocID((i*3 + j + 1) % numPLocs)
			recs[j] = tkplq.Record{
				OID: tkplq.ObjectID(100 + i),
				T:   tkplq.Time(610 + int64(i)*5 + int64(j)),
				Samples: tkplq.SampleSet{
					{Loc: p1, Prob: 0.6},
					{Loc: p2, Prob: 0.4},
				},
			}
		}
		batches[i] = recs
	}
	return batches
}

// answerSet evaluates the comparison query battery: all three TkPLQ
// algorithms, density, and one flow — everything the server surfaces.
func answerSet(t *testing.T, sys *tkplq.System) []*tkplq.Response {
	t.Helper()
	queries := []tkplq.Query{
		{Kind: tkplq.KindTopK, Algorithm: tkplq.BestFirst, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindTopK, Algorithm: tkplq.NestedLoop, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindTopK, Algorithm: tkplq.Naive, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindDensity, K: 5, Ts: 0, Te: 700, SLocs: sys.AllSLocations()},
		{Kind: tkplq.KindFlow, Ts: 0, Te: 700, SLocs: sys.AllSLocations()[:1]},
	}
	out := make([]*tkplq.Response, len(queries))
	for i, q := range queries {
		resp, err := sys.Do(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = resp
	}
	return out
}

// assertIdentical compares two answer sets bit-for-bit: same rankings, same
// float64 flows (==, no tolerance).
func assertIdentical(t *testing.T, label string, got, want []*tkplq.Response) {
	t.Helper()
	for i := range want {
		if got[i].Flow != want[i].Flow {
			t.Errorf("%s: query %d scalar flow %v != %v", label, i, got[i].Flow, want[i].Flow)
		}
		if len(got[i].Results) != len(want[i].Results) {
			t.Fatalf("%s: query %d returned %d results, want %d", label, i, len(got[i].Results), len(want[i].Results))
		}
		for j := range want[i].Results {
			if got[i].Results[j] != want[i].Results[j] {
				t.Errorf("%s: query %d rank %d: %+v != %+v", label, i, j, got[i].Results[j], want[i].Results[j])
			}
		}
	}
}

func TestCrashRestartDeterminism(t *testing.T) {
	// Reference: one system that never restarts. Capture the battery after
	// nine batches and again after all ten.
	refB, refTable := durableTestBuilding(t)
	ref, err := tkplq.NewSystem(refB.Space, refTable, tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := ingestBatches(refB.Space.NumPLocations())
	for _, b := range batches[:9] {
		if err := ref.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	want9 := answerSet(t, ref)
	if err := ref.Ingest(batches[9]); err != nil {
		t.Fatal(err)
	}
	want10 := answerSet(t, ref)

	// Durable run: bootstrap snapshot, five batches, mid-run snapshot, five
	// more batches — then die without Close (kill -9) and tear the final
	// frame as a crash mid-append would.
	dir := t.TempDir()
	durB, durTable := durableTestBuilding(t)
	dur, err := tkplq.NewSystem(durB.Space, durTable, tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.Snapshot(); err != tkplq.ErrNoSnapshotter {
		t.Fatalf("Snapshot without persister = %v, want ErrNoSnapshotter", err)
	}
	store, recovered, err := tkplq.OpenWAL(tkplq.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Len() != 0 {
		t.Fatalf("fresh dir recovered %d records", recovered.Len())
	}
	dur.SetPersister(store)
	if err := dur.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:5] {
		if err := dur.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := dur.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[5:] {
		if err := dur.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. The dying process's flock evaporates with it; here
	// the "restarted process" recovers a byte-for-byte copy of the
	// directory (the crashed store still holds the original's lock). Tear
	// the final frame (batch 9) by chopping bytes off the active segment.
	dir2 := copyDataDir(t, dir)
	segs, err := filepath.Glob(filepath.Join(dir2, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one active segment, got %v (%v)", segs, err)
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Recover. The torn batch 9 is gone; everything else must answer
	// bit-identically to the uninterrupted reference at nine batches.
	store2, table2, err := tkplq.OpenWAL(tkplq.WALOptions{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	if ws := store2.Stats(); ws.TornBytes == 0 || ws.SnapshotSeq != 2 {
		t.Fatalf("recovery stats = %+v, want torn bytes and snapshot seq 2", ws)
	}
	recB, _ := durableTestBuilding(t)
	rec, err := tkplq.NewSystem(recB.Space, table2, tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.SetPersister(store2)

	// Concurrent queries against the recovered system, under -race.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			assertIdentical(t, "recovered (torn tail)", answerSet(t, rec), want9)
		}()
	}
	wg.Wait()

	// Re-ingest the lost batch; now the recovered system must match the
	// ten-batch reference exactly.
	if err := rec.Ingest(batches[9]); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "recovered + reingested", answerSet(t, rec), want10)

	// One more full cycle, this time a graceful restart.
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	store3, table3, err := tkplq.OpenWAL(tkplq.WALOptions{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	rec2B, _ := durableTestBuilding(t)
	rec2, err := tkplq.NewSystem(rec2B.Space, table3, tkplq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "second restart", answerSet(t, rec2), want10)
}
