package tkplq_test

import (
	"context"
	"fmt"
	"log"

	"tkplq"
)

// paperSystem builds a System over the paper's Figure 1 floor plan and
// Table 2 records, configured to reproduce the worked examples' arithmetic.
func paperSystem() (*tkplq.System, *tkplq.SLocID, *tkplq.SLocID) {
	fig := tkplq.PaperExampleSpace()
	p := fig.PLocs
	table := tkplq.NewTable()
	for _, r := range []tkplq.Record{
		{OID: 1, T: 1, Samples: tkplq.SampleSet{{Loc: p[3], Prob: 1.0}}},
		{OID: 2, T: 1, Samples: tkplq.SampleSet{{Loc: p[0], Prob: 0.5}, {Loc: p[1], Prob: 0.5}}},
		{OID: 3, T: 2, Samples: tkplq.SampleSet{{Loc: p[1], Prob: 0.6}, {Loc: p[2], Prob: 0.4}}},
		{OID: 1, T: 3, Samples: tkplq.SampleSet{{Loc: p[8], Prob: 1.0}}},
		{OID: 2, T: 3, Samples: tkplq.SampleSet{{Loc: p[1], Prob: 0.7}, {Loc: p[3], Prob: 0.3}}},
		{OID: 1, T: 4, Samples: tkplq.SampleSet{{Loc: p[7], Prob: 1.0}}},
		{OID: 2, T: 5, Samples: tkplq.SampleSet{{Loc: p[4], Prob: 0.3}, {Loc: p[5], Prob: 0.6}, {Loc: p[7], Prob: 0.1}}},
		{OID: 3, T: 5, Samples: tkplq.SampleSet{{Loc: p[1], Prob: 0.4}, {Loc: p[2], Prob: 0.6}}},
		{OID: 2, T: 6, Samples: tkplq.SampleSet{{Loc: p[4], Prob: 0.2}, {Loc: p[5], Prob: 0.3}, {Loc: p[7], Prob: 0.5}}},
		{OID: 3, T: 8, Samples: tkplq.SampleSet{{Loc: p[2], Prob: 1.0}}},
	} {
		table.Append(r)
	}
	sys, err := tkplq.NewSystem(fig.Space, table, tkplq.Options{
		Presence:         tkplq.UnnormalizedTotal,
		DisableReduction: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sys, &fig.SLocs[0], &fig.SLocs[5]
}

// ExampleSystem_Do answers the paper's Example 4 query — "which location was
// most popular during [t1, t8]?" — through the context-aware Query API.
func ExampleSystem_Do() {
	sys, r1, r6 := paperSystem()

	resp, err := sys.Do(context.Background(), tkplq.Query{
		Kind:      tkplq.KindTopK,
		Algorithm: tkplq.BestFirst,
		K:         1,
		Ts:        1,
		Te:        8,
		SLocs:     []tkplq.SLocID{*r1, *r6},
	})
	if err != nil {
		log.Fatal(err)
	}
	top := resp.Results[0]
	fmt.Printf("top-1: %s (flow %.2f)\n", sys.Space().SLocation(top.SLoc).Name, top.Flow)
	// Output:
	// top-1: r6 (flow 1.97)
}

// ExampleSystem_DoBatch evaluates the paper's Example 3 flow computations —
// Θ(r6) and Θ(r1) over [t1, t8] — as one shared-work batch: both queries use
// the same window, so the per-object data reduction runs once for the pair.
func ExampleSystem_DoBatch() {
	sys, r1, r6 := paperSystem()

	resps, err := sys.DoBatch(context.Background(), []tkplq.Query{
		{Kind: tkplq.KindFlow, SLocs: []tkplq.SLocID{*r6}, Ts: 1, Te: 8},
		{Kind: tkplq.KindFlow, SLocs: []tkplq.SLocID{*r1}, Ts: 1, Te: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Θ(r6)=%.2f Θ(r1)=%.2f shared=%d\n",
		resps[0].Flow, resps[1].Flow, resps[0].Stats.SharedBatch)
	// Output:
	// Θ(r6)=1.97 Θ(r1)=0.50 shared=2
}
