package tkplq_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"tkplq"
)

// paperRecords returns the paper's Table 2 positioning records over the
// Figure 1 P-locations.
func paperRecords(p [9]tkplq.PLocID) []tkplq.Record {
	return []tkplq.Record{
		{OID: 1, T: 1, Samples: tkplq.SampleSet{{Loc: p[3], Prob: 1.0}}},
		{OID: 2, T: 1, Samples: tkplq.SampleSet{{Loc: p[0], Prob: 0.5}, {Loc: p[1], Prob: 0.5}}},
		{OID: 3, T: 2, Samples: tkplq.SampleSet{{Loc: p[1], Prob: 0.6}, {Loc: p[2], Prob: 0.4}}},
		{OID: 1, T: 3, Samples: tkplq.SampleSet{{Loc: p[8], Prob: 1.0}}},
		{OID: 2, T: 3, Samples: tkplq.SampleSet{{Loc: p[1], Prob: 0.7}, {Loc: p[3], Prob: 0.3}}},
		{OID: 1, T: 4, Samples: tkplq.SampleSet{{Loc: p[7], Prob: 1.0}}},
		{OID: 2, T: 5, Samples: tkplq.SampleSet{{Loc: p[4], Prob: 0.3}, {Loc: p[5], Prob: 0.6}, {Loc: p[7], Prob: 0.1}}},
		{OID: 3, T: 5, Samples: tkplq.SampleSet{{Loc: p[1], Prob: 0.4}, {Loc: p[2], Prob: 0.6}}},
		{OID: 2, T: 6, Samples: tkplq.SampleSet{{Loc: p[4], Prob: 0.2}, {Loc: p[5], Prob: 0.3}, {Loc: p[7], Prob: 0.5}}},
		{OID: 3, T: 8, Samples: tkplq.SampleSet{{Loc: p[2], Prob: 1.0}}},
	}
}

// paperOptions configures a System to reproduce the worked examples'
// arithmetic.
func paperOptions() tkplq.Options {
	return tkplq.Options{
		Presence:         tkplq.UnnormalizedTotal,
		DisableReduction: true,
	}
}

// paperSystem builds a System over the paper's Figure 1 floor plan and
// Table 2 records, configured to reproduce the worked examples' arithmetic.
func paperSystem() (*tkplq.System, *tkplq.SLocID, *tkplq.SLocID) {
	fig := tkplq.PaperExampleSpace()
	table := tkplq.NewTable()
	for _, r := range paperRecords(fig.PLocs) {
		table.Append(r)
	}
	sys, err := tkplq.NewSystem(fig.Space, table, paperOptions())
	if err != nil {
		log.Fatal(err)
	}
	return sys, &fig.SLocs[0], &fig.SLocs[5]
}

// ExampleSystem_Do answers the paper's Example 4 query — "which location was
// most popular during [t1, t8]?" — through the context-aware Query API.
func ExampleSystem_Do() {
	sys, r1, r6 := paperSystem()

	resp, err := sys.Do(context.Background(), tkplq.Query{
		Kind:      tkplq.KindTopK,
		Algorithm: tkplq.BestFirst,
		K:         1,
		Ts:        1,
		Te:        8,
		SLocs:     []tkplq.SLocID{*r1, *r6},
	})
	if err != nil {
		log.Fatal(err)
	}
	top := resp.Results[0]
	fmt.Printf("top-1: %s (flow %.2f)\n", sys.Space().SLocation(top.SLoc).Name, top.Flow)
	// Output:
	// top-1: r6 (flow 1.97)
}

// ExampleSystem_DoBatch evaluates the paper's Example 3 flow computations —
// Θ(r6) and Θ(r1) over [t1, t8] — as one shared-work batch: both queries use
// the same window, so the per-object data reduction runs once for the pair.
func ExampleSystem_DoBatch() {
	sys, r1, r6 := paperSystem()

	resps, err := sys.DoBatch(context.Background(), []tkplq.Query{
		{Kind: tkplq.KindFlow, SLocs: []tkplq.SLocID{*r6}, Ts: 1, Te: 8},
		{Kind: tkplq.KindFlow, SLocs: []tkplq.SLocID{*r1}, Ts: 1, Te: 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Θ(r6)=%.2f Θ(r1)=%.2f shared=%d\n",
		resps[0].Flow, resps[1].Flow, resps[0].Stats.SharedBatch)
	// Output:
	// Θ(r6)=1.97 Θ(r1)=0.50 shared=2
}

// ExampleSystem_Ingest streams the paper's Table 2 records into a live,
// durable system: a WAL store is attached with SetPersister, so every
// accepted batch is written ahead to disk before it lands in the table.
// Restarting — reopening the data directory — recovers the exact table,
// and the recovered system answers Example 3's flow computation
// identically. (The same holds across a kill -9: every acknowledged batch
// is already framed in the log; see TestCrashRestartDeterminism.)
func ExampleSystem_Ingest() {
	dir, err := os.MkdirTemp("", "tkplq-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fig := tkplq.PaperExampleSpace()
	store, recovered, err := tkplq.OpenWAL(tkplq.WALOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tkplq.NewSystem(fig.Space, recovered, paperOptions())
	if err != nil {
		log.Fatal(err)
	}
	sys.SetPersister(store)

	// Each batch is validated, logged, applied — atomically per batch.
	for _, rec := range paperRecords(fig.PLocs) {
		if err := sys.Ingest([]tkplq.Record{rec}); err != nil {
			log.Fatal(err)
		}
	}
	// Restart: release the directory and recover it from disk.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}

	store2, table, err := tkplq.OpenWAL(tkplq.WALOptions{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer store2.Close()
	restarted, err := tkplq.NewSystem(fig.Space, table, paperOptions())
	if err != nil {
		log.Fatal(err)
	}
	flow, _ := restarted.Flow(fig.SLocs[5], 1, 8)
	fmt.Printf("recovered %d records, Θ(r6)=%.2f\n", table.Len(), flow)
	// Output:
	// recovered 10 records, Θ(r6)=1.97
}
