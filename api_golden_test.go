package tkplq_test

// The public-API golden test: a snapshot of every exported declaration of
// package tkplq lives in testdata/api.txt, and this test fails when the
// surface drifts — so a PR can never silently break the facade. After an
// intentional change, regenerate with:
//
//	go test -run TestPublicAPIGolden . -update-api
//
// (wired into CI as `make apicheck`).

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.txt with the current public API")

const apiGoldenPath = "testdata/api.txt"

func TestPublicAPIGolden(t *testing.T) {
	got, err := publicAPI(".")
	if err != nil {
		t.Fatal(err)
	}
	current := strings.Join(got, "\n") + "\n"

	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(apiGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(current), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d declarations", apiGoldenPath, len(got))
		return
	}

	wantBytes, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("%v — run `go test -run TestPublicAPIGolden . -update-api` to create the snapshot", err)
	}
	want := strings.Split(strings.TrimRight(string(wantBytes), "\n"), "\n")

	wantSet := make(map[string]bool, len(want))
	for _, line := range want {
		wantSet[line] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, line := range got {
		gotSet[line] = true
	}
	var missing, added []string
	for _, line := range want {
		if !gotSet[line] {
			missing = append(missing, line)
		}
	}
	for _, line := range got {
		if !wantSet[line] {
			added = append(added, line)
		}
	}
	if len(missing) == 0 && len(added) == 0 {
		return
	}
	var sb strings.Builder
	sb.WriteString("public API drifted from testdata/api.txt:\n")
	for _, line := range missing {
		fmt.Fprintf(&sb, "  removed/changed: %s\n", line)
	}
	for _, line := range added {
		fmt.Fprintf(&sb, "  added/changed:   %s\n", line)
	}
	sb.WriteString("if intentional, regenerate with: go test -run TestPublicAPIGolden . -update-api")
	t.Fatal(sb.String())
}

var spaceRun = regexp.MustCompile(`\s+`)

// publicAPI renders every exported top-level declaration of the package in
// dir as one normalized line each, sorted.
func publicAPI(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	pkg, ok := pkgs["tkplq"]
	if !ok {
		return nil, fmt.Errorf("package tkplq not found in %s", dir)
	}

	render := func(node any) (string, error) {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			return "", err
		}
		return spaceRun.ReplaceAllString(buf.String(), " "), nil
	}

	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				d.Doc = nil
				d.Body = nil
				line, err := render(d)
				if err != nil {
					return nil, err
				}
				lines = append(lines, line)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						sp.Doc, sp.Comment = nil, nil
						// Struct and interface types snapshot their full
						// exported shape; other types (aliases included)
						// snapshot the definition.
						if st, ok := sp.Type.(*ast.StructType); ok {
							stripUnexportedFields(st)
						}
						line, err := render(sp)
						if err != nil {
							return nil, err
						}
						lines = append(lines, "type "+line)
					case *ast.ValueSpec:
						exported := false
						for _, name := range sp.Names {
							if name.IsExported() {
								exported = true
								break
							}
						}
						if !exported {
							continue
						}
						sp.Doc, sp.Comment = nil, nil
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						// Render the full spec (names, type, values) so a
						// retyped or re-pointed const/var trips the gate.
						line, err := render(sp)
						if err != nil {
							return nil, err
						}
						lines = append(lines, kw+" "+line)
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// stripUnexportedFields removes unexported fields from a struct snapshot.
func stripUnexportedFields(st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	kept := st.Fields.List[:0]
	for _, f := range st.Fields.List {
		exported := len(f.Names) == 0 // embedded field: keep
		for _, n := range f.Names {
			if n.IsExported() {
				exported = true
				break
			}
		}
		if exported {
			f.Doc, f.Comment = nil, nil
			kept = append(kept, f)
		}
	}
	st.Fields.List = kept
}
