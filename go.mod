module tkplq

go 1.24
